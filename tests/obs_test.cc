// Observability-endpoint suite (ctest label `obs`; docs/observability.md):
// the StatusServer HTTP introspection endpoint and the anomaly-triggered
// FlightRecorder.
//
//   - StatusServer: a raw loopback TCP client GETs registered paths and
//     checks status line, Content-Type and body; unknown paths 404 (listing
//     the registry), non-GET methods 405; requests_served() counts them all.
//   - SynthesizeCaptureFromLifecycles: a clean lifecycle window synthesizes
//     a capture that passes the offline analyzer end to end (the same
//     `concord_trace --check` gate), including the anatomy identity on every
//     complete request; preempted lifecycles truncate with their missing
//     records declared in buffer_dropped; a corrupted stamp chain is caught
//     by the analyzer's anatomy identity check.
//   - FlightRecorder live: an injected deadline-miss burst (every request
//     submitted with an already-expired deadline) must fire the trigger and
//     dump a valid concord.trace.v1 file; DumpNow() honors the max_dumps
//     budget; StatusJson() reports armed state and trigger counts.
//
// Like the runtime suites these verify behaviour, not timing; the one
// polling-dependent case (the live trigger) waits on the recorder's own
// counters with a generous deadline instead of sleeping a fixed interval.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/status_server.h"
#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/analyzer.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/flight_recorder.h"

namespace concord {
namespace {

using telemetry::RequestLifecycle;

// One blocking HTTP exchange against 127.0.0.1:port; returns the full
// response (headers + body), empty on connect/send failure.
std::string HttpExchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::string();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::string();
  }
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return std::string();
  }
  std::string response;
  char buffer[4096];
  // Connection: close — read until EOF. concord-lint: allow-no-probe (test client)
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  return HttpExchange(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(StatusServerTest, ServesRegisteredPathsOnEphemeralPort) {
  obs::StatusServer::Options options;  // port 0: ephemeral
  obs::StatusServer server(options);
  server.Handle("/statusz", "text/plain; charset=utf-8", [] { return "status body here"; });
  server.Handle("/metricsz", "text/plain; version=0.0.4",
                [] { return "concord_requests_completed_total 7\n"; });
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0) << "ephemeral port must be resolved after Start()";

  const std::string statusz = HttpGet(server.port(), "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("Content-Type: text/plain; charset=utf-8"), std::string::npos);
  EXPECT_NE(statusz.find("status body here"), std::string::npos);

  const std::string metricsz = HttpGet(server.port(), "/metricsz");
  EXPECT_NE(metricsz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metricsz.find("concord_requests_completed_total 7"), std::string::npos);

  // Query strings are stripped before route lookup (curl '?x=y' works).
  const std::string with_query = HttpGet(server.port(), "/statusz?verbose=1");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
}

TEST(StatusServerTest, UnknownPathListsRegistryAndNonGetIsRejected) {
  obs::StatusServer server(obs::StatusServer::Options{});
  server.Handle("/statusz", "text/plain", [] { return "ok"; });
  ASSERT_TRUE(server.Start());

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos) << missing;
  EXPECT_NE(missing.find("/statusz"), std::string::npos)
      << "404 body must list the registered paths";

  const std::string post =
      HttpExchange(server.port(), "POST /statusz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos) << post;
  server.Stop();
}

TEST(StatusServerTest, StopIsIdempotentAndRestartFails) {
  obs::StatusServer server(obs::StatusServer::Options{});
  server.Handle("/x", "text/plain", [] { return "x"; });
  ASSERT_TRUE(server.Start());
  const std::uint16_t port = server.port();
  server.Stop();
  server.Stop();  // idempotent
  // The socket is closed: a fresh connection must fail or reset.
  EXPECT_EQ(HttpGet(port, "/x").find("HTTP/1.1 200 OK"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight-dump synthesis
// ---------------------------------------------------------------------------

RequestLifecycle MakeLifecycle(std::uint64_t id, std::uint64_t base, std::int32_t worker) {
  RequestLifecycle lifecycle;
  lifecycle.id = id;
  lifecycle.request_class = static_cast<std::int32_t>(id % 2);
  lifecycle.first_worker = worker;
  lifecycle.completion_worker = worker;
  lifecycle.arrival_tsc = base;
  lifecycle.adopt_tsc = base + 100;
  lifecycle.dispatch_tsc = base + 250;
  lifecycle.first_run_tsc = base + 400;
  lifecycle.finish_tsc = base + 1400;
  lifecycle.service_tsc = 1000;
  lifecycle.complete_tsc = base + 1500;
  return lifecycle;
}

trace::FlightRecorderOptions SynthesisMeta() {
  trace::FlightRecorderOptions meta;
  meta.tsc_ghz = 2.0;
  meta.worker_count = 2;
  meta.jbsq_depth = 2;
  meta.quantum_us = 50.0;
  meta.policy = "concord-jbsq";
  return meta;
}

TEST(FlightSynthesisTest, CleanWindowPassesOfflineAnalyzer) {
  std::vector<RequestLifecycle> window;
  for (std::uint64_t i = 0; i < 16; ++i) {
    window.push_back(MakeLifecycle(i, 10000 + i * 2000, static_cast<std::int32_t>(i % 2)));
  }
  const trace::TraceCapture capture =
      trace::SynthesizeCaptureFromLifecycles(SynthesisMeta(), window, /*evicted=*/0);
  EXPECT_EQ(capture.records.size(), 3 * window.size());  // arrival + dispatch + segment
  EXPECT_EQ(capture.buffer_dropped, 0u);

  const trace::AnalyzerReport report =
      trace::AnalyzeChromeTraceJson(trace::ToChromeTraceJson(capture), trace::AnalyzerOptions{});
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_EQ(report.requests_complete, window.size());
  EXPECT_EQ(report.anatomy_identity_failures, 0u)
      << "synthesized timelines must satisfy the exact stage identity";
}

TEST(FlightSynthesisTest, PreemptedLifecyclesTruncateWithDeclaredLoss) {
  std::vector<RequestLifecycle> window;
  window.push_back(MakeLifecycle(0, 10000, 0));
  RequestLifecycle preempted = MakeLifecycle(1, 20000, 1);
  preempted.preemptions = 2;
  preempted.preempt_tsc[0] = preempted.first_run_tsc + 300;  // first yield stamped
  window.push_back(preempted);

  const trace::TraceCapture capture =
      trace::SynthesizeCaptureFromLifecycles(SynthesisMeta(), window, /*evicted=*/3);
  // 2 * preemptions records truncated, plus the 3 ring-evicted lifecycles.
  EXPECT_EQ(capture.buffer_dropped, 3u + 2u * 2u);

  const trace::AnalyzerReport report =
      trace::AnalyzeChromeTraceJson(trace::ToChromeTraceJson(capture), trace::AnalyzerOptions{});
  // Accounted-lossy, not mis-stitched: the analyzer accepts the file with
  // the truncated request counted, and no invariant it can still check fails.
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_EQ(report.requests_complete + report.requests_truncated, window.size());
}

TEST(FlightSynthesisTest, CorruptedStampChainFailsAnatomyIdentity) {
  std::vector<RequestLifecycle> window;
  RequestLifecycle corrupt = MakeLifecycle(0, 10000, 0);
  corrupt.adopt_tsc = corrupt.dispatch_tsc + 500;  // adoption after dispatch: impossible
  window.push_back(corrupt);

  const trace::TraceCapture capture =
      trace::SynthesizeCaptureFromLifecycles(SynthesisMeta(), window, /*evicted=*/0);
  const trace::AnalyzerReport report =
      trace::AnalyzeChromeTraceJson(trace::ToChromeTraceJson(capture), trace::AnalyzerOptions{});
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.anatomy_identity_failures, 1u)
      << "the stage-sum identity must catch the corrupted chain";
}

// ---------------------------------------------------------------------------
// Live flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, InjectedDeadlineMissBurstTriggersValidDump) {
  if constexpr (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const std::string dump_path = testing::TempDir() + "/flight_burst.trace.json";
  std::remove(dump_path.c_str());

  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(1.0); };
  Runtime runtime(options, callbacks);
  runtime.Start();

  trace::FlightRecorderOptions flight_options;
  flight_options.poll_ms = 2.0;
  flight_options.deadline_miss_burst = 8;  // the injected anomaly's trigger
  flight_options.dump_path = dump_path;
  flight_options.tsc_ghz = runtime.GetTelemetry().tsc_ghz;
  flight_options.worker_count = options.worker_count;
  flight_options.quantum_us = options.quantum_us;
  flight_options.policy = "concord-jbsq";
  trace::FlightRecorder flight(flight_options, [&runtime] { return runtime.GetTelemetry(); });
  flight.Start();
  EXPECT_TRUE(flight.armed());

  // The anomaly: a burst of requests whose deadlines are already expired at
  // dispatch (slack bucket 0). Submitted faster than one poll window.
  constexpr std::uint64_t kRequests = 256;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(i, 0, nullptr, /*deadline_us=*/0.001)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();

  // Wait on the recorder's own counters, bounded: the burst lands in some
  // poll window well before the deadline.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  // concord-lint: allow-no-probe (test wait loop)
  while (flight.triggers_fired() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  flight.Stop();
  runtime.Shutdown();

  ASSERT_GE(flight.triggers_fired(), 1u) << "deadline-miss burst never fired";
  ASSERT_GE(flight.dumps_written(), 1u);
  EXPECT_NE(flight.last_trigger().find("deadline_miss_burst"), std::string::npos)
      << flight.last_trigger();

  // The dump must be a valid concord.trace.v1 file: offline-analyzable with
  // every drop accounted — the same gate `concord_trace --check` applies.
  const trace::AnalyzerReport report =
      trace::AnalyzeChromeTraceFile(dump_path, trace::AnalyzerOptions{});
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_GT(report.requests_complete, 0u);
  EXPECT_EQ(report.anatomy_identity_failures, 0u);
  std::remove(dump_path.c_str());
}

TEST(FlightRecorderTest, DumpNowHonorsBudgetAndStatusJsonReportsState) {
  if constexpr (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const std::string dump_path = testing::TempDir() + "/flight_manual.trace.json";
  std::remove(dump_path.c_str());

  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();

  trace::FlightRecorderOptions flight_options;  // every trigger disabled
  flight_options.poll_ms = 2.0;
  flight_options.dump_path = dump_path;
  flight_options.max_dumps = 1;
  flight_options.tsc_ghz = runtime.GetTelemetry().tsc_ghz;
  flight_options.worker_count = options.worker_count;
  trace::FlightRecorder flight(flight_options, [&runtime] { return runtime.GetTelemetry(); });
  flight.Start();  // baseline first: only lifecycles completed while armed buffer

  for (std::uint64_t i = 0; i < 16; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();

  // Wait until at least one poll window has buffered the completed requests.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  // concord-lint: allow-no-probe (test wait loop)
  while (flight.lifecycles_buffered() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(flight.lifecycles_buffered(), 0u);

  const std::string written = flight.DumpNow("unit test");
  EXPECT_EQ(written, dump_path);
  EXPECT_EQ(flight.dumps_written(), 1u);
  // Budget spent: further dumps are counted but not written.
  EXPECT_EQ(flight.DumpNow("over budget"), std::string());
  EXPECT_EQ(flight.dumps_written(), 1u);
  EXPECT_EQ(flight.triggers_fired(), 2u);

  const std::string status = flight.StatusJson();
  EXPECT_NE(status.find("\"armed\": true"), std::string::npos) << status;
  // last_trigger tracks every fire, including the one past the dump budget.
  EXPECT_NE(status.find("manual: over budget"), std::string::npos) << status;
  flight.Stop();
  runtime.Shutdown();

  const trace::AnalyzerReport report =
      trace::AnalyzeChromeTraceFile(dump_path, trace::AnalyzerOptions{});
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace concord
