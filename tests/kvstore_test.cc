// Tests for the LevelDB-like store: slice/arena/skiplist primitives,
// memtable sequence semantics, write batches, snapshots, plain tables and
// the instrumented Db facade.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/kvstore/arena.h"
#include "src/kvstore/db.h"
#include "src/kvstore/memtable.h"
#include "src/kvstore/plain_table.h"
#include "src/kvstore/skiplist.h"
#include "src/kvstore/slice.h"
#include "src/kvstore/write_batch.h"
#include "src/runtime/instrument.h"

namespace concord {
namespace {

TEST(SliceTest, CompareSemantics) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("") == Slice(""));
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  Rng rng(1);
  std::vector<std::pair<char*, std::size_t>> allocations;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t size = 1 + rng.UniformU64(300);
    char* p = arena.Allocate(size);
    std::memset(p, static_cast<int>(i & 0xff), size);
    allocations.emplace_back(p, size);
  }
  // Every allocation still holds its fill pattern: no overlap.
  for (int i = 0; i < 1000; ++i) {
    const auto& [p, size] = allocations[static_cast<std::size_t>(i)];
    for (std::size_t j = 0; j < size; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), static_cast<unsigned char>(i & 0xff));
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(3);  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t), 0u);
  }
}

struct IntComparator {
  int operator()(int a, int b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator{}, &arena);
  for (int i = 0; i < 2000; i += 2) {
    list.Insert(i);
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(list.Contains(i), i % 2 == 0) << i;
  }
  EXPECT_EQ(list.size(), 1000u);
}

TEST(SkipListTest, IteratorVisitsInOrder) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator{}, &arena);
  Rng rng(3);
  std::set<int> reference;
  while (reference.size() < 500) {
    const int v = static_cast<int>(rng.UniformU64(100000));
    if (reference.insert(v).second) {
      list.Insert(v);
    }
  }
  SkipList<int, IntComparator>::Iterator it(&list);
  it.SeekToFirst();
  for (int expected : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), expected);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, SeekFindsFirstGreaterOrEqual) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator{}, &arena);
  for (int v : {10, 20, 30, 40}) {
    list.Insert(v);
  }
  SkipList<int, IntComparator>::Iterator it(&list);
  it.Seek(25);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it.Seek(40);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 40);
  it.Seek(41);
  EXPECT_FALSE(it.Valid());
}

// Property test: the skiplist agrees with std::set across random workloads.
class SkipListPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListPropertyTest, MatchesReferenceSet) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator{}, &arena);
  std::set<int> reference;
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const int v = static_cast<int>(rng.UniformU64(5000));
    if (reference.insert(v).second) {
      list.Insert(v);
    }
  }
  EXPECT_EQ(list.size(), reference.size());
  for (int probe = 0; probe < 5000; probe += 7) {
    EXPECT_EQ(list.Contains(probe), reference.count(probe) > 0) << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(MemTableTest, LatestValueWins) {
  MemTable table;
  table.Add(1, ValueType::kValue, "k", "v1");
  table.Add(2, ValueType::kValue, "k", "v2");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(table.Get("k", kMaxSequenceNumber, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v2");
}

TEST(MemTableTest, SnapshotReadsSeeOldVersions) {
  MemTable table;
  table.Add(1, ValueType::kValue, "k", "v1");
  table.Add(5, ValueType::kValue, "k", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(table.Get("k", 3, &value, &deleted));
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(table.Get("k", 5, &value, &deleted));
  EXPECT_EQ(value, "v5");
  EXPECT_FALSE(table.Get("k", 0, &value, &deleted));  // before any version
}

TEST(MemTableTest, DeletionShadowsValue) {
  MemTable table;
  table.Add(1, ValueType::kValue, "k", "v");
  table.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(table.Get("k", kMaxSequenceNumber, &value, &deleted));
  EXPECT_TRUE(deleted);
  // The older snapshot still sees the value.
  ASSERT_TRUE(table.Get("k", 1, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v");
}

TEST(MemTableTest, ScanSkipsDeletedAndStaleVersions) {
  MemTable table;
  table.Add(1, ValueType::kValue, "a", "1");
  table.Add(2, ValueType::kValue, "b", "2");
  table.Add(3, ValueType::kDeletion, "a", "");
  table.Add(4, ValueType::kValue, "c", "3");
  table.Add(5, ValueType::kValue, "b", "2new");
  std::vector<std::pair<std::string, std::string>> seen;
  table.Scan(kMaxSequenceNumber, [&](const Slice& k, const Slice& v) {
    seen.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "b");
  EXPECT_EQ(seen[0].second, "2new");
  EXPECT_EQ(seen[1].first, "c");
}

TEST(MemTableTest, ScanAtSnapshotSeesConsistentState) {
  MemTable table;
  table.Add(1, ValueType::kValue, "a", "old");
  table.Add(2, ValueType::kValue, "b", "old");
  table.Add(3, ValueType::kValue, "a", "new");
  table.Add(4, ValueType::kDeletion, "b", "");
  std::map<std::string, std::string> seen;
  table.Scan(2, [&](const Slice& k, const Slice& v) {
    seen[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["a"], "old");
  EXPECT_EQ(seen["b"], "old");
}

TEST(MemTableTest, ScanEarlyStop) {
  MemTable table;
  for (int i = 0; i < 10; ++i) {
    table.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue,
              std::string(1, static_cast<char>('a' + i)), "v");
  }
  int visited = 0;
  table.Scan(kMaxSequenceNumber, [&](const Slice&, const Slice&) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(MemTableTest, ProbeRunsPerEntry) {
  MemTable table;
  for (int i = 0; i < 50; ++i) {
    table.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, std::to_string(i), "v");
  }
  int probes = 0;
  table.Scan(
      kMaxSequenceNumber, [](const Slice&, const Slice&) { return true; },
      [&] { ++probes; });
  EXPECT_EQ(probes, 50);
}

TEST(WriteBatchTest, AppliesAllOpsInOrder) {
  MemTable table;
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  EXPECT_EQ(batch.Count(), 3u);
  const SequenceNumber used = batch.ApplyTo(&table, 10);
  EXPECT_EQ(used, 3u);
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(table.Get("a", kMaxSequenceNumber, &value, &deleted));
  EXPECT_TRUE(deleted);
  ASSERT_TRUE(table.Get("b", kMaxSequenceNumber, &value, &deleted));
  EXPECT_EQ(value, "2");
}

TEST(PlainTableTest, BuildAndGet) {
  MemTable table;
  table.Add(1, ValueType::kValue, "x", "1");
  table.Add(2, ValueType::kValue, "y", "2");
  table.Add(3, ValueType::kDeletion, "x", "");
  const PlainTable snapshot = PlainTable::Build(table, kMaxSequenceNumber);
  EXPECT_EQ(snapshot.size(), 1u);
  std::string value;
  EXPECT_FALSE(snapshot.Get("x", &value));
  ASSERT_TRUE(snapshot.Get("y", &value));
  EXPECT_EQ(value, "2");
  EXPECT_FALSE(snapshot.Get("z", &value));
}

TEST(PlainTableTest, ScanMatchesMemtable) {
  MemTable table;
  Rng rng(7);
  std::map<std::string, std::string> reference;
  SequenceNumber seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformU64(500));
    if (rng.Bernoulli(0.2)) {
      table.Add(++seq, ValueType::kDeletion, key, "");
      reference.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      table.Add(++seq, ValueType::kValue, key, value);
      reference[key] = value;
    }
  }
  const PlainTable snapshot = PlainTable::Build(table, kMaxSequenceNumber);
  EXPECT_EQ(snapshot.size(), reference.size());
  std::map<std::string, std::string> scanned;
  snapshot.Scan([&](const Slice& k, const Slice& v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, reference);
}

TEST(DbTest, PutGetDelete) {
  Db db;
  db.Put("hello", "world");
  std::string value;
  ASSERT_TRUE(db.Get("hello", &value));
  EXPECT_EQ(value, "world");
  db.Delete("hello");
  EXPECT_FALSE(db.Get("hello", &value));
}

TEST(DbTest, OverwriteReturnsLatest) {
  Db db;
  db.Put("k", "v1");
  db.Put("k", "v2");
  std::string value;
  ASSERT_TRUE(db.Get("k", &value));
  EXPECT_EQ(value, "v2");
}

TEST(DbTest, WriteBatchIsAtomicallyVisible) {
  Db db;
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  db.Write(batch);
  std::string value;
  EXPECT_TRUE(db.Get("a", &value));
  EXPECT_TRUE(db.Get("b", &value));
}

TEST(DbTest, ScanVisitsAllLiveKeysInOrder) {
  Db db;
  PopulateDb(&db, 100, 8);
  db.Delete("key00000050");
  std::vector<std::string> keys;
  const std::uint64_t visited = db.Scan([&](const Slice& k, const Slice&) {
    keys.push_back(k.ToString());
    return true;
  });
  EXPECT_EQ(visited, 99u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::count(keys.begin(), keys.end(), "key00000050"), 0);
}

TEST(DbTest, RangeScanHalfOpenInterval) {
  Db db;
  PopulateDb(&db, 100, 8);  // key00000000 .. key00000099
  std::vector<std::string> keys;
  const std::uint64_t visited =
      db.RangeScan("key00000010", "key00000020", [&](const Slice& k, const Slice&) {
        keys.push_back(k.ToString());
        return true;
      });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(keys.front(), "key00000010");
  EXPECT_EQ(keys.back(), "key00000019");  // end is exclusive
}

TEST(DbTest, RangeScanOpenEndedAndEmpty) {
  Db db;
  PopulateDb(&db, 20, 8);
  // Open-ended: from key 15 to the end.
  EXPECT_EQ(db.RangeScan("key00000015", Slice(),
                         [](const Slice&, const Slice&) { return true; }),
            5u);
  // Range with no keys.
  EXPECT_EQ(db.RangeScan("zzz", Slice(), [](const Slice&, const Slice&) { return true; }), 0u);
  // start == end: empty half-open interval.
  EXPECT_EQ(db.RangeScan("key00000005", "key00000005",
                         [](const Slice&, const Slice&) { return true; }),
            0u);
}

TEST(DbTest, RangeScanSkipsDeletedAndSeesLatest) {
  Db db;
  PopulateDb(&db, 10, 8);
  db.Delete("key00000003");
  db.Put("key00000004", "fresh");
  std::map<std::string, std::string> seen;
  db.RangeScan("key00000002", "key00000006", [&](const Slice& k, const Slice& v) {
    seen[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(seen.size(), 3u);  // 2, 4, 5 (3 deleted)
  EXPECT_EQ(seen.count("key00000003"), 0u);
  EXPECT_EQ(seen["key00000004"], "fresh");
}

TEST(DbTest, ScanCountMatchesPopulation) {
  Db db;
  PopulateDb(&db, 15000, 64);  // the paper's 15k-key setup
  EXPECT_EQ(db.ScanCount(), 15000u);
}

TEST(DbTest, DbAgreesWithReferenceModelUnderRandomOps) {
  Db db;
  std::map<std::string, std::string> reference;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformU64(300));
    const double action = rng.NextDouble();
    if (action < 0.6) {
      const std::string value = "v" + std::to_string(i);
      db.Put(key, value);
      reference[key] = value;
    } else if (action < 0.8) {
      db.Delete(key);
      reference.erase(key);
    } else {
      std::string value;
      const bool found = db.Get(key, &value);
      const auto it = reference.find(key);
      ASSERT_EQ(found, it != reference.end()) << key;
      if (found) {
        ASSERT_EQ(value, it->second);
      }
    }
  }
  EXPECT_EQ(db.ScanCount(), reference.size());
}

TEST(DbTest, ScanProbesAtLoopBackEdges) {
  Db db;
  PopulateDb(&db, 200, 8);
  ResetProbeCount();
  db.ScanCount();
  // At least one probe per visited entry (entries include versions).
  EXPECT_GE(ProbeCount(), 200u);
}

TEST(InstrumentTest, ProbeInvokesBinding) {
  int fired = 0;
  ProbeBinding binding;
  binding.fn = [](void* arg) { ++*static_cast<int*>(arg); };
  binding.arg = &fired;
  SetProbeBinding(binding);
  CONCORD_PROBE();
  CONCORD_PROBE();
  SetProbeBinding({});
  CONCORD_PROBE();  // unbound: no effect
  EXPECT_EQ(fired, 2);
}

TEST(InstrumentTest, PreemptGuardSuppressesYield) {
  int fired = 0;
  ProbeBinding binding;
  binding.fn = [](void* arg) { ++*static_cast<int*>(arg); };
  binding.arg = &fired;
  SetProbeBinding(binding);
  {
    PreemptGuard guard;
    EXPECT_TRUE(PreemptionDisabled());
    CONCORD_PROBE();  // suppressed
    {
      PreemptGuard nested;
      CONCORD_PROBE();  // still suppressed
    }
    EXPECT_TRUE(PreemptionDisabled());
  }
  EXPECT_FALSE(PreemptionDisabled());
  CONCORD_PROBE();
  SetProbeBinding({});
  EXPECT_EQ(fired, 1);
}

TEST(InstrumentTest, GuardedMutexDefersPreemptionWhileHeld) {
  GuardedMutex mu;
  EXPECT_FALSE(PreemptionDisabled());
  mu.lock();
  EXPECT_TRUE(PreemptionDisabled());
  mu.unlock();
  EXPECT_FALSE(PreemptionDisabled());
  EXPECT_TRUE(mu.try_lock());
  EXPECT_TRUE(PreemptionDisabled());
  mu.unlock();
}

}  // namespace
}  // namespace concord
