// Tests for the real Concord runtime: fibers, SPSC rings, end-to-end
// scheduling, preemption, lock safety and dispatcher work conservation.
//
// These tests run on whatever CPU count the host provides (including one);
// they verify behaviour, not timing.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/runtime/context.h"
#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/runtime/spsc_ring.h"

namespace concord {
namespace {

TEST(FiberTest, RunsToCompletion) {
  Fiber fiber;
  int value = 0;
  fiber.Reset([&] { value = 42; });
  EXPECT_TRUE(fiber.Run());
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, YieldAndResume) {
  Fiber fiber;
  std::vector<int> trace;
  fiber.Reset([&] {
    trace.push_back(1);
    Fiber::Yield();
    trace.push_back(2);
    Fiber::Yield();
    trace.push_back(3);
  });
  EXPECT_FALSE(fiber.Run());
  trace.push_back(10);
  EXPECT_FALSE(fiber.Run());
  trace.push_back(20);
  EXPECT_TRUE(fiber.Run());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(FiberTest, CurrentTracksExecution) {
  Fiber fiber;
  Fiber* observed = nullptr;
  EXPECT_EQ(Fiber::Current(), nullptr);
  fiber.Reset([&] { observed = Fiber::Current(); });
  fiber.Run();
  EXPECT_EQ(observed, &fiber);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(FiberTest, ReusableAfterFinish) {
  Fiber fiber;
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    fiber.Reset([&] { ++runs; });
    EXPECT_TRUE(fiber.Run());
  }
  EXPECT_EQ(runs, 100);
}

// pthread_self() is declared __attribute__((const)), so an inline call
// would be cached across Fiber::Yield() and hide the migration; force a
// fresh read. (Application code inside fibers must take the same care with
// anything thread-identity-derived.)
__attribute__((noinline)) std::thread::id CurrentThreadIdNoCache() {
  std::thread::id id = std::this_thread::get_id();
  asm volatile("" : "+m"(id));
  return id;
}

TEST(FiberTest, ResumesOnDifferentThread) {
  Fiber fiber;
  std::thread::id first_id;
  std::thread::id second_id;
  fiber.Reset([&] {
    first_id = CurrentThreadIdNoCache();
    Fiber::Yield();
    second_id = CurrentThreadIdNoCache();
  });
  // Keep both threads alive through the whole test so the OS cannot reuse a
  // thread id and mask the migration.
  std::atomic<int> stage{0};
  std::thread a([&] {
    EXPECT_FALSE(fiber.Run());
    stage.store(1);
    while (stage.load() < 2) {
      std::this_thread::yield();
    }
  });
  std::thread b([&] {
    while (stage.load() < 1) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(fiber.Run());
    stage.store(2);
  });
  a.join();
  b.join();
  EXPECT_NE(first_id, second_id);
}

TEST(FiberTest, DeepStackUsage) {
  Fiber fiber(1024 * 1024);
  std::uint64_t sum = 0;
  fiber.Reset([&] {
    // Recursion with yields sprinkled in: exercises stack integrity across
    // switches.
    std::function<std::uint64_t(int)> rec = [&](int n) -> std::uint64_t {
      if (n == 0) {
        return 0;
      }
      if (n % 50 == 0) {
        Fiber::Yield();
      }
      return static_cast<std::uint64_t>(n) + rec(n - 1);
    };
    sum = rec(400);
  });
  while (!fiber.Run()) {
  }
  EXPECT_EQ(sum, 400u * 401u / 2u);
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
}

TEST(SpscRingTest, CapacityIsExact) {
  // JBSQ(k) semantics: the inbox accepts exactly k items, never k+1.
  for (std::size_t cap : {1u, 2u, 3u, 5u, 8u}) {
    SpscRing<int> ring(cap);
    std::size_t pushed = 0;
    while (ring.TryPush(1)) {
      ++pushed;
    }
    EXPECT_EQ(pushed, cap) << "capacity " << cap;
  }
}

TEST(SpscRingTest, WraparoundKeepsFifoAtNonPowerOfTwoCapacity) {
  // Capacity 5 lives in 8 slots, so the masked indices wrap every 8
  // operations while the ring wraps every 5 — sustained cycling walks
  // through every (head, tail) phase alignment.
  SpscRing<int> ring(5);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const int batch = 1 + round % 5;
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(ring.TryPush(next_push));
      ++next_push;
    }
    ASSERT_EQ(ring.SizeApprox(), static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
    ASSERT_TRUE(ring.EmptyApprox());
  }
}

TEST(SpscRingTest, FullRingStaysFullAcrossWraparound) {
  // Pop one, push one, at permanent capacity: the full/empty distinction
  // must survive arbitrarily many index wraps.
  SpscRing<int> ring(3);
  int next_push = 0;
  while (ring.TryPush(next_push)) {
    ++next_push;
  }
  ASSERT_EQ(next_push, 3);
  for (int round = 0; round < 500; ++round) {
    EXPECT_FALSE(ring.TryPush(999)) << "round " << round;
    EXPECT_EQ(ring.SizeApprox(), 3u);
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, round);
    ASSERT_TRUE(ring.TryPush(next_push));
    ++next_push;
  }
}

TEST(SpscRingTest, SizeApproxIsBoundedUnderConcurrency) {
  // SizeApprox reads two indices non-atomically; the contract is that a torn
  // read may only be stale, never out of [0, capacity]. Capacity 5 makes the
  // clamp observable: the slot array holds 8, so an unclamped torn read
  // could report 6 or 7.
  SpscRing<std::uint64_t> ring(5);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (ring.SizeApprox() > ring.capacity()) {
        violation.store(true);
      }
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    std::uint64_t received = 0;
    std::uint64_t value = 0;
    while (received < 20000) {
      if (ring.TryPop(&value)) {
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < 20000; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_FALSE(violation.load());
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::atomic<bool> producer_done{false};
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      std::uint64_t value = 0;
      if (ring.TryPop(&value)) {
        sum += value;
        ++received;
      } else if (producer_done.load() && ring.EmptyApprox()) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  producer_done.store(true);
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// --- end-to-end runtime tests ---

Runtime::Options SmallOptions() {
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 50.0;  // generous: hosts here are slow and shared
  options.jbsq_depth = 2;
  options.work_conserving_dispatcher = false;
  return options;
}

TEST(RuntimeTest, CompletesAllRequests) {
  std::atomic<int> handled{0};
  std::atomic<int> completions{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(2.0);
    handled.fetch_add(1);
  };
  callbacks.on_complete = [&](const RequestView&, std::uint64_t latency) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 500; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 500);
  EXPECT_EQ(completions.load(), 500);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.completed, 500u);
  EXPECT_EQ(stats.submitted, 500u);
}

TEST(RuntimeTest, SetupCallbacksFire) {
  std::atomic<int> setup_calls{0};
  std::atomic<int> worker_setups{0};
  Runtime::Callbacks callbacks;
  callbacks.setup = [&] { setup_calls.fetch_add(1); };
  callbacks.setup_worker = [&](int worker) {
    if (worker >= 0) {
      worker_setups.fetch_add(1);
    }
  };
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  runtime.Submit(1, 0, nullptr);
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(setup_calls.load(), 1);
  EXPECT_EQ(worker_setups.load(), 2);
}

TEST(RuntimeTest, LongRequestsGetPreempted) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.2;  // tiny quantum to force preemption
  options.jbsq_depth = 1;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    // Request 0 spins long; the rest are short and queue behind it.
    SpinWithProbesUs(view.request_class == 1 ? 2000.0 : 5.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  // On a single-CPU host the worker can occasionally burn through the whole
  // long request inside one OS timeslice before the dispatcher runs; retry a
  // few rounds so the test asserts the mechanism, not one scheduling roll.
  int rounds = 0;
  std::uint64_t id = 0;
  while (runtime.GetStats().preemptions == 0 && rounds < 10) {
    ++rounds;
    runtime.Submit(id++, 1, nullptr);  // long
    for (int i = 0; i < 20; ++i) {
      while (!runtime.Submit(id++, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
  }
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), rounds * 21);
  EXPECT_GT(runtime.GetStats().preemptions, 0u);
}

TEST(RuntimeTest, ShortRequestsOvertakeALongOne) {
  // With preemptive round-robin, shorts submitted after a long request must
  // not wait for its full 20ms: they complete while it is still running.
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.5;
  options.jbsq_depth = 2;
  std::atomic<bool> long_done{false};
  std::atomic<int> shorts_before_long{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      SpinWithProbesUs(20000.0);
      long_done.store(true);
    } else {
      SpinWithProbesUs(5.0);
      if (!long_done.load()) {
        shorts_before_long.fetch_add(1);
      }
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  runtime.Submit(0, 1, nullptr);
  // Give the long request a head start.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_GT(shorts_before_long.load(), 0);
}

TEST(RuntimeTest, PreemptionDeferredWhileLockHeld) {
  // A request that holds a GuardedMutex through its entire spin can never be
  // preempted, no matter how small the quantum.
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.2;
  GuardedMutex app_mutex;
  std::atomic<std::uint64_t> preempts_inside_lock{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      std::lock_guard<GuardedMutex> lock(app_mutex);
      SpinWithProbesUs(500.0);
    } else {
      SpinWithProbesUs(2.0);
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  const std::uint64_t preempts_before = runtime.GetStats().preemptions;
  runtime.Submit(0, 1, nullptr);
  runtime.WaitIdle();
  preempts_inside_lock = runtime.GetStats().preemptions - preempts_before;
  runtime.Shutdown();
  EXPECT_EQ(preempts_inside_lock.load(), 0u);
}

TEST(RuntimeTest, WorkConservingDispatcherCompletesRequests) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.work_conserving_dispatcher = true;
  options.quantum_us = 100.0;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(200.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Burst far beyond the single worker's queue: the dispatcher must steal.
  for (std::uint64_t i = 0; i < 40; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 40);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_GT(stats.dispatcher_completed, 0u);
  EXPECT_EQ(stats.dispatcher_started, stats.dispatcher_completed);
}

TEST(RuntimeTest, PayloadRoundTrip) {
  int payloads[8] = {};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    *static_cast<int*>(view.payload) = static_cast<int>(view.id) + 100;
  };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    runtime.Submit(i, 0, &payloads[i]);
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(payloads[i], i + 100);
  }
}

TEST(RuntimeTest, StressManyShortRequests) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 3;
  options.work_conserving_dispatcher = true;
  options.quantum_us = 5.0;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 5000);
}

}  // namespace
}  // namespace concord
