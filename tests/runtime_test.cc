// Tests for the real Concord runtime: fibers, SPSC rings, end-to-end
// scheduling, preemption, lock safety and dispatcher work conservation.
//
// These tests run on whatever CPU count the host provides (including one);
// they verify behaviour, not timing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "src/common/alloc_hooks.h"
#include "src/runtime/context.h"
#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/runtime/spsc_ring.h"
#include "src/telemetry/telemetry.h"

// Counting allocator: the canonical installation referenced by
// common/alloc_hooks.h. Every heap operation performed by any thread of this
// test binary bumps that thread's counter, which
// Runtime::{Begin,End}AllocationAudit folds into a per-window total for the
// dispatcher and workers. Counting is a thread-local increment, so this adds
// no synchronization and no behavioral change to the code under test.
void* operator new(std::size_t size) {
  concord::NoteAllocOp();
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept {
  concord::NoteAllocOp();
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept { ::operator delete(ptr); }
void operator delete[](void* ptr) noexcept { ::operator delete(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { ::operator delete(ptr); }

namespace concord {
namespace {

TEST(FiberTest, RunsToCompletion) {
  Fiber fiber;
  int value = 0;
  fiber.Reset([&] { value = 42; });
  EXPECT_TRUE(fiber.Run());
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, YieldAndResume) {
  Fiber fiber;
  std::vector<int> trace;
  fiber.Reset([&] {
    trace.push_back(1);
    Fiber::Yield();
    trace.push_back(2);
    Fiber::Yield();
    trace.push_back(3);
  });
  EXPECT_FALSE(fiber.Run());
  trace.push_back(10);
  EXPECT_FALSE(fiber.Run());
  trace.push_back(20);
  EXPECT_TRUE(fiber.Run());
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(FiberTest, CurrentTracksExecution) {
  Fiber fiber;
  Fiber* observed = nullptr;
  EXPECT_EQ(Fiber::Current(), nullptr);
  fiber.Reset([&] { observed = Fiber::Current(); });
  fiber.Run();
  EXPECT_EQ(observed, &fiber);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(FiberTest, ReusableAfterFinish) {
  Fiber fiber;
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    fiber.Reset([&] { ++runs; });
    EXPECT_TRUE(fiber.Run());
  }
  EXPECT_EQ(runs, 100);
}

// pthread_self() is declared __attribute__((const)), so an inline call
// would be cached across Fiber::Yield() and hide the migration; force a
// fresh read. (Application code inside fibers must take the same care with
// anything thread-identity-derived.)
__attribute__((noinline)) std::thread::id CurrentThreadIdNoCache() {
  std::thread::id id = std::this_thread::get_id();
  asm volatile("" : "+m"(id));
  return id;
}

TEST(FiberTest, ResumesOnDifferentThread) {
  Fiber fiber;
  std::thread::id first_id;
  std::thread::id second_id;
  fiber.Reset([&] {
    first_id = CurrentThreadIdNoCache();
    Fiber::Yield();
    second_id = CurrentThreadIdNoCache();
  });
  // Keep both threads alive through the whole test so the OS cannot reuse a
  // thread id and mask the migration.
  std::atomic<int> stage{0};
  std::thread a([&] {
    EXPECT_FALSE(fiber.Run());
    stage.store(1);
    while (stage.load() < 2) {
      std::this_thread::yield();
    }
  });
  std::thread b([&] {
    while (stage.load() < 1) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(fiber.Run());
    stage.store(2);
  });
  a.join();
  b.join();
  EXPECT_NE(first_id, second_id);
}

TEST(FiberTest, DeepStackUsage) {
  Fiber fiber(1024 * 1024);
  std::uint64_t sum = 0;
  fiber.Reset([&] {
    // Recursion with yields sprinkled in: exercises stack integrity across
    // switches.
    std::function<std::uint64_t(int)> rec = [&](int n) -> std::uint64_t {
      if (n == 0) {
        return 0;
      }
      if (n % 50 == 0) {
        Fiber::Yield();
      }
      return static_cast<std::uint64_t>(n) + rec(n - 1);
    };
    sum = rec(400);
  });
  while (!fiber.Run()) {
  }
  EXPECT_EQ(sum, 400u * 401u / 2u);
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
}

TEST(SpscRingTest, CapacityIsExact) {
  // JBSQ(k) semantics: the inbox accepts exactly k items, never k+1.
  for (std::size_t cap : {1u, 2u, 3u, 5u, 8u}) {
    SpscRing<int> ring(cap);
    std::size_t pushed = 0;
    while (ring.TryPush(1)) {
      ++pushed;
    }
    EXPECT_EQ(pushed, cap) << "capacity " << cap;
  }
}

TEST(SpscRingTest, WraparoundKeepsFifoAtNonPowerOfTwoCapacity) {
  // Capacity 5 lives in 8 slots, so the masked indices wrap every 8
  // operations while the ring wraps every 5 — sustained cycling walks
  // through every (head, tail) phase alignment.
  SpscRing<int> ring(5);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const int batch = 1 + round % 5;
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(ring.TryPush(next_push));
      ++next_push;
    }
    ASSERT_EQ(ring.SizeApprox(), static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
    ASSERT_TRUE(ring.EmptyApprox());
  }
}

TEST(SpscRingTest, FullRingStaysFullAcrossWraparound) {
  // Pop one, push one, at permanent capacity: the full/empty distinction
  // must survive arbitrarily many index wraps.
  SpscRing<int> ring(3);
  int next_push = 0;
  while (ring.TryPush(next_push)) {
    ++next_push;
  }
  ASSERT_EQ(next_push, 3);
  for (int round = 0; round < 500; ++round) {
    EXPECT_FALSE(ring.TryPush(999)) << "round " << round;
    EXPECT_EQ(ring.SizeApprox(), 3u);
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, round);
    ASSERT_TRUE(ring.TryPush(next_push));
    ++next_push;
  }
}

TEST(SpscRingTest, SizeApproxIsBoundedUnderConcurrency) {
  // SizeApprox reads two indices non-atomically; the contract is that a torn
  // read may only be stale, never out of [0, capacity]. Capacity 5 makes the
  // clamp observable: the slot array holds 8, so an unclamped torn read
  // could report 6 or 7.
  SpscRing<std::uint64_t> ring(5);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (ring.SizeApprox() > ring.capacity()) {
        violation.store(true);
      }
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    std::uint64_t received = 0;
    std::uint64_t value = 0;
    while (received < 20000) {
      if (ring.TryPop(&value)) {
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < 20000; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_FALSE(violation.load());
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::atomic<bool> producer_done{false};
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      std::uint64_t value = 0;
      if (ring.TryPop(&value)) {
        sum += value;
        ++received;
      } else if (producer_done.load() && ring.EmptyApprox()) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  producer_done.store(true);
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// --- end-to-end runtime tests ---

Runtime::Options SmallOptions() {
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 50.0;  // generous: hosts here are slow and shared
  options.jbsq_depth = 2;
  options.work_conserving_dispatcher = false;
  return options;
}

TEST(RuntimeTest, CompletesAllRequests) {
  std::atomic<int> handled{0};
  std::atomic<int> completions{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(2.0);
    handled.fetch_add(1);
  };
  callbacks.on_complete = [&](const RequestView&, std::uint64_t latency) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 500; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 500);
  EXPECT_EQ(completions.load(), 500);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.completed, 500u);
  EXPECT_EQ(stats.submitted, 500u);
}

TEST(RuntimeTest, SetupCallbacksFire) {
  std::atomic<int> setup_calls{0};
  std::atomic<int> worker_setups{0};
  Runtime::Callbacks callbacks;
  callbacks.setup = [&] { setup_calls.fetch_add(1); };
  callbacks.setup_worker = [&](int worker) {
    if (worker >= 0) {
      worker_setups.fetch_add(1);
    }
  };
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  runtime.Submit(1, 0, nullptr);
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(setup_calls.load(), 1);
  EXPECT_EQ(worker_setups.load(), 2);
}

TEST(RuntimeTest, LongRequestsGetPreempted) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.2;  // tiny quantum to force preemption
  options.jbsq_depth = 1;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    // Request 0 spins long; the rest are short and queue behind it.
    SpinWithProbesUs(view.request_class == 1 ? 2000.0 : 5.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  // On a single-CPU host the worker can occasionally burn through the whole
  // long request inside one OS timeslice before the dispatcher runs; retry a
  // few rounds so the test asserts the mechanism, not one scheduling roll.
  int rounds = 0;
  std::uint64_t id = 0;
  while (runtime.GetStats().preemptions == 0 && rounds < 10) {
    ++rounds;
    runtime.Submit(id++, 1, nullptr);  // long
    for (int i = 0; i < 20; ++i) {
      while (!runtime.Submit(id++, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
  }
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), rounds * 21);
  EXPECT_GT(runtime.GetStats().preemptions, 0u);
}

TEST(RuntimeTest, ShortRequestsOvertakeALongOne) {
  // With preemptive round-robin, shorts submitted after a long request must
  // not wait for its full 20ms: they complete while it is still running.
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.5;
  options.jbsq_depth = 2;
  std::atomic<bool> long_done{false};
  std::atomic<int> shorts_before_long{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      SpinWithProbesUs(20000.0);
      long_done.store(true);
    } else {
      SpinWithProbesUs(5.0);
      if (!long_done.load()) {
        shorts_before_long.fetch_add(1);
      }
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  runtime.Submit(0, 1, nullptr);
  // Give the long request a head start.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_GT(shorts_before_long.load(), 0);
}

TEST(RuntimeTest, PreemptionDeferredWhileLockHeld) {
  // A request that holds a GuardedMutex through its entire spin can never be
  // preempted, no matter how small the quantum.
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.quantum_us = 0.2;
  GuardedMutex app_mutex;
  std::atomic<std::uint64_t> preempts_inside_lock{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      std::lock_guard<GuardedMutex> lock(app_mutex);
      SpinWithProbesUs(500.0);
    } else {
      SpinWithProbesUs(2.0);
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  const std::uint64_t preempts_before = runtime.GetStats().preemptions;
  runtime.Submit(0, 1, nullptr);
  runtime.WaitIdle();
  preempts_inside_lock = runtime.GetStats().preemptions - preempts_before;
  runtime.Shutdown();
  EXPECT_EQ(preempts_inside_lock.load(), 0u);
}

TEST(RuntimeTest, WorkConservingDispatcherCompletesRequests) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.work_conserving_dispatcher = true;
  options.quantum_us = 100.0;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(200.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Burst far beyond the single worker's queue: the dispatcher must steal.
  for (std::uint64_t i = 0; i < 40; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 40);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_GT(stats.dispatcher_completed, 0u);
  EXPECT_EQ(stats.dispatcher_started, stats.dispatcher_completed);
}

TEST(RuntimeTest, PayloadRoundTrip) {
  int payloads[8] = {};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    *static_cast<int*>(view.payload) = static_cast<int>(view.id) + 100;
  };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    runtime.Submit(i, 0, &payloads[i]);
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(payloads[i], i + 100);
  }
}

TEST(RuntimeTest, StressManyShortRequests) {
  Runtime::Options options = SmallOptions();
  options.worker_count = 3;
  options.work_conserving_dispatcher = true;
  options.quantum_us = 5.0;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 5000);
}

TEST(SpscRingBatchTest, PartialBatchEdges) {
  SpscRing<int> ring(5);
  const int first[3] = {0, 1, 2};
  EXPECT_EQ(ring.TryPushBatch(first, 3), 3u);
  // Only 2 slots free: the batch is truncated, not rejected.
  const int second[4] = {3, 4, 99, 99};
  EXPECT_EQ(ring.TryPushBatch(second, 4), 2u);
  // Full ring: zero pushed.
  EXPECT_EQ(ring.TryPushBatch(second, 1), 0u);
  int out[8] = {};
  // Bounded by max_count, then by availability.
  EXPECT_EQ(ring.TryPopBatch(out, 2), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 3u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 4);
  // Empty ring: zero popped.
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);
}

TEST(SpscRingBatchTest, BatchWraparoundKeepsFifo) {
  // Capacity 5 lives in 8 slots, so the masked indices wrap every 8
  // operations while the ring wraps every 5 — sustained batched cycling
  // walks through every (head, tail) phase alignment, including batches
  // that straddle the physical end of the slot array.
  SpscRing<int> ring(5);
  int values[5];
  int out[5];
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const int batch = 1 + round % 5;
    for (int i = 0; i < batch; ++i) {
      values[i] = next_push++;
    }
    ASSERT_EQ(ring.TryPushBatch(values, static_cast<std::size_t>(batch)),
              static_cast<std::size_t>(batch));
    ASSERT_EQ(ring.SizeApprox(), static_cast<std::size_t>(batch));
    ASSERT_EQ(ring.TryPopBatch(out, static_cast<std::size_t>(batch)),
              static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      ASSERT_EQ(out[i], next_pop++);
    }
    ASSERT_TRUE(ring.EmptyApprox());
  }
}

TEST(SpscRingBatchTest, BatchAndSingleOpsInterleave) {
  SpscRing<int> ring(7);
  const int batch[3] = {0, 1, 2};
  ASSERT_EQ(ring.TryPushBatch(batch, 3), 3u);
  ASSERT_TRUE(ring.TryPush(3));
  const int more[2] = {4, 5};
  ASSERT_EQ(ring.TryPushBatch(more, 2), 2u);
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0);
  int rest[8] = {};
  ASSERT_EQ(ring.TryPopBatch(rest, 8), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rest[i], i + 1);
  }
}

TEST(SpscRingBatchTest, TwoThreadBatchStress) {
  // Batched producer against a batched consumer across the release/acquire
  // publish edge; TSan runs this in CI. FIFO content is checked exactly.
  SpscRing<int> ring(13);
  constexpr int kTotal = 100000;
  std::thread producer([&ring] {
    int values[7];
    int next = 0;
    while (next < kTotal) {
      int batch = 1 + next % 7;
      if (next + batch > kTotal) {
        batch = kTotal - next;
      }
      for (int i = 0; i < batch; ++i) {
        values[i] = next + i;
      }
      const std::size_t pushed = ring.TryPushBatch(values, static_cast<std::size_t>(batch));
      next += static_cast<int>(pushed);
      if (pushed == 0) {
        std::this_thread::yield();
      }
    }
  });
  int out[16];
  int expected = 0;
  while (expected < kTotal) {
    const std::size_t popped = ring.TryPopBatch(out, 16);
    if (popped == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < popped; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(RuntimeTest, SubmitBackpressureIsReportedWithoutBlocking) {
  // Slab and ingress ring sized to 8: a burst of 9 submits must reject the
  // 9th (no request can complete and recycle within the burst), and the
  // rejection path must hand back a usable runtime — after the in-flight
  // requests drain, Submit succeeds again.
  Runtime::Options options = SmallOptions();
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.ingress_capacity = 8;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1000.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(runtime.Submit(i, 0, nullptr)) << "burst submit " << i;
  }
  EXPECT_FALSE(runtime.Submit(8, 0, nullptr)) << "9th submit should hit backpressure";
  runtime.WaitIdle();
  EXPECT_TRUE(runtime.Submit(9, 0, nullptr)) << "recycled requests should admit new work";
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 9);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.submitted, 9u);  // the rejected submit is not counted
  EXPECT_EQ(stats.completed, 9u);
}

TEST(RuntimeTest, ProducerSlotChurnAcrossThreads) {
  // Waves of short-lived submitter threads: each wave claims producer slots,
  // exits (releasing them through the TLS destructor), and the next wave
  // must adopt the released slots instead of growing the registry.
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 4;
  constexpr std::uint64_t kPerThread = 50;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(0.5);
    handled.fetch_add(1);
  };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  std::uint64_t next_id = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> submitters;
    submitters.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      const std::uint64_t base = next_id + static_cast<std::uint64_t>(t) * kPerThread;
      submitters.emplace_back([&runtime, base] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          while (!runtime.Submit(base + i, 0, nullptr)) {
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& submitter : submitters) {
      submitter.join();  // join runs the TLS destructors: slots released
    }
    next_id += static_cast<std::uint64_t>(kThreadsPerWave) * kPerThread;
  }
  runtime.WaitIdle();
  const std::uint64_t total = static_cast<std::uint64_t>(kWaves) * kThreadsPerWave * kPerThread;
  if constexpr (telemetry::kEnabled) {
    const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
    // Slot reuse: concurrent submitters never exceeded one wave, so the
    // registry must not have grown past one slot per wave thread.
    EXPECT_GE(snapshot.dispatcher.producer_slots, 1u);
    EXPECT_LE(snapshot.dispatcher.producer_slots,
              static_cast<std::uint64_t>(kThreadsPerWave));
    // Ingress conservation: once quiescent, every accepted request was
    // adopted from an ingress ring exactly once.
    EXPECT_EQ(snapshot.dispatcher.ingress_drained, total);
    EXPECT_GE(snapshot.dispatcher.ingress_batches, 1u);
    EXPECT_GE(snapshot.dispatcher.max_ingress_batch, 1u);
    EXPECT_LE(snapshot.dispatcher.max_ingress_batch, 128u);
  }
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), static_cast<int>(total));
  EXPECT_EQ(runtime.GetStats().completed, total);
}

TEST(RuntimeTest, SubmittersRaceRegistrationAtStartup) {
  // All threads claim slots concurrently (first-Submit registration races
  // against the dispatcher's lock-free slot discovery). TSan runs this.
  constexpr int kThreads = 6;
  constexpr std::uint64_t kPerThread = 200;
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) * kPerThread;
    submitters.emplace_back([&runtime, base] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        while (!runtime.Submit(base + i, 0, nullptr)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), kThreads * static_cast<int>(kPerThread));
}

TEST(RuntimeTest, SteadyStateDispatchIsAllocationFree) {
  // The zero-allocation guarantee (docs/runtime.md), proven rather than
  // trusted: with the counting operator new/delete installed above, a warm
  // runtime's dispatcher and workers must perform zero heap operations
  // across a full submit -> dispatch -> run -> complete -> recycle window.
  Runtime::Options options = SmallOptions();
  options.quantum_us = 500.0;  // no preemptions: fiber demand stays at the warmup level
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1.0);
    handled.fetch_add(1);
  };
  callbacks.on_complete = [&](const RequestView&, std::uint64_t) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Warmup: populate the fiber pool and every ring endpoint with the same
  // submission pattern the audited window uses.
  for (std::uint64_t i = 0; i < 300; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.BeginAllocationAudit();
  for (std::uint64_t i = 300; i < 600; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  const std::uint64_t audited_ops = runtime.EndAllocationAudit();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 600);
  EXPECT_EQ(audited_ops, 0u) << "dispatch hot path performed heap operations";
}

TEST(RuntimeTest, SubmitRacingShutdownNeverStrandsRequests) {
  // Teardown-ordering regression (IngressLayer's in_submit handshake):
  // producer threads hammer Submit() while the main thread calls Shutdown()
  // underneath them. Every accepted request must be drained and completed —
  // none stranded in an ingress ring — and every post-shutdown Submit must
  // report false rather than block or crash. TSan runs this.
  constexpr int kThreads = 4;
  std::atomic<bool> stop_producers{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&runtime, &stop_producers, &accepted, t] {
      std::uint64_t id = static_cast<std::uint64_t>(t) << 32;
      while (!stop_producers.load(std::memory_order_relaxed)) {
        if (runtime.Submit(id++, 0, nullptr)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the race get going before pulling the rug.
  while (accepted.load(std::memory_order_relaxed) < 500) {
    std::this_thread::yield();
  }
  runtime.Shutdown();  // concurrent with live Submit() traffic
  stop_producers.store(true, std::memory_order_relaxed);
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_FALSE(runtime.Submit(1, 0, nullptr)) << "post-shutdown Submit must be rejected";
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.completed, accepted.load()) << "accepted requests stranded at shutdown";
  EXPECT_EQ(handled.load(), accepted.load());
}

TEST(RuntimeTest, StopAcceptingAloneKeepsRuntimeRunning) {
  // StopAccepting() is the first phase of Shutdown(), usable alone: the
  // runtime must finish in-flight work and reject new work, while the
  // threads stay up until Shutdown().
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
  Runtime runtime(SmallOptions(), callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 100; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  EXPECT_TRUE(runtime.accepting());
  runtime.StopAccepting();
  EXPECT_FALSE(runtime.accepting());
  EXPECT_FALSE(runtime.Submit(100, 0, nullptr));
  runtime.WaitIdle();  // in-flight work still completes
  EXPECT_EQ(handled.load(), 100);
  runtime.Shutdown();
  EXPECT_EQ(runtime.GetStats().completed, 100u);
}

}  // namespace
}  // namespace concord
