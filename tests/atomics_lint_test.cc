// Unit coverage for the atomics lint (src/analysis/atomics_lint.h): each
// rule on minimal in-memory sources, the suppression tags, the cross-file
// pairing behavior, the violation fixture (proving the lint has teeth), and
// the real runtime/telemetry trees staying clean — the in-test twin of the
// lint.atomics_lint_cli_runtime_telemetry ctest gate.

#include "src/analysis/atomics_lint.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace concord {
namespace {

using Kind = AtomicsLintViolation::Kind;

std::vector<AtomicsLintViolation> Lint(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  return LintAtomicsSources(sources, AtomicsLintConfig{});
}

std::vector<AtomicsLintViolation> LintOne(const std::string& content) {
  return Lint({{"test.cc", content}});
}

int CountKind(const std::vector<AtomicsLintViolation>& violations, Kind kind) {
  int n = 0;
  for (const auto& v : violations) {
    n += (v.kind == kind) ? 1 : 0;
  }
  return n;
}

// ---- defaulted-order ----------------------------------------------------

TEST(AtomicsLint, FlagsDefaultedOrder) {
  const auto violations = LintOne("int F(std::atomic<int>& a) { return a.load(); }\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Kind::kDefaultedOrder);
  EXPECT_EQ(violations[0].line, 1);
  EXPECT_NE(violations[0].message.find("'a'"), std::string::npos);
}

TEST(AtomicsLint, FlagsDefaultedCompareExchange) {
  const auto violations =
      LintOne("bool F(std::atomic<int>& a, int& e) { return a.compare_exchange_strong(e, 1); }\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Kind::kDefaultedOrder);
}

TEST(AtomicsLint, AcceptsExplicitOrderAndOrderVariables) {
  EXPECT_TRUE(LintOne("int F(std::atomic<int>& a) {\n"
                      "  return a.load(std::memory_order_relaxed);\n"
                      "}\n")
                  .empty());
  // An order passed through a variable (telemetry.h's BumpSingleWriter
  // pattern) counts as explicit.
  EXPECT_TRUE(LintOne("void F(std::atomic<int>& a, std::memory_order store_order) {\n"
                      "  a.store(1, store_order);\n"
                      "}\n")
                  .empty());
}

TEST(AtomicsLint, AllowDefaultTagSuppresses) {
  EXPECT_TRUE(LintOne("int F(std::atomic<int>& a) {\n"
                      "  // concord-atomics: allow-default (init before threads exist)\n"
                      "  return a.load();\n"
                      "}\n")
                  .empty());
}

// ---- seq_cst rationale --------------------------------------------------

TEST(AtomicsLint, FlagsSeqCstWithoutRationale) {
  // The acquire load pairs the store for the R3 rule, isolating R2.
  const auto violations =
      LintOne("void F(std::atomic<int>& a) { a.store(1, std::memory_order_seq_cst); }\n"
              "int G(std::atomic<int>& a) { return a.load(std::memory_order_acquire); }\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Kind::kSeqCstWithoutRationale);
}

TEST(AtomicsLint, RationaleCommentWithinWindowAccepted) {
  EXPECT_TRUE(LintOne("void F(std::atomic<int>& a) {\n"
                      "  // seq_cst: must be totally ordered against the drain scan.\n"
                      "  a.store(1, std::memory_order_seq_cst);\n"
                      "}\n"
                      "int G(std::atomic<int>& a) { return a.load(std::memory_order_acquire); }\n")
                  .empty());
}

TEST(AtomicsLint, SeqCstOpsParticipateInPairing) {
  // A seq_cst load is a valid acquire half: the handshake's in_submit field
  // (seq_cst marker load, release clear stores) must lint as paired.
  EXPECT_TRUE(LintOne("// seq_cst: marker must be in the scan's total order.\n"
                      "bool Quiet() { return in_submit.load(std::memory_order_seq_cst) == 0; }\n"
                      "void Clear() { in_submit.store(0, std::memory_order_release); }\n")
                  .empty());
}

TEST(AtomicsLint, RationaleOutsideWindowStillFlagged) {
  std::string source = "// seq_cst is needed, trust me\n";
  source += std::string(12, '\n');  // push the op far below the comment
  source += "void F(std::atomic<int>& a) { a.store(1, std::memory_order_seq_cst); }\n";
  const auto violations = LintOne(source);
  EXPECT_EQ(CountKind(violations, Kind::kSeqCstWithoutRationale), 1);
}

TEST(AtomicsLint, MentionOfSeqCstInCodeIsNotARationale) {
  // The literal memory_order_seq_cst token in *code* must not satisfy the
  // rationale rule for a later op.
  const auto violations =
      LintOne("void F(std::atomic<int>& a) {\n"
              "  a.store(1, std::memory_order_seq_cst);\n"
              "  a.store(2, std::memory_order_seq_cst);\n"
              "}\n");
  EXPECT_EQ(CountKind(violations, Kind::kSeqCstWithoutRationale), 2);
}

TEST(AtomicsLint, AllowSeqCstTagSuppresses) {
  EXPECT_TRUE(LintOne("void F(std::atomic<int>& a) {\n"
                      "  // concord-atomics: allow-seq-cst (benchmark pessimizer)\n"
                      "  a.store(1, std::memory_order_seq_cst);\n"
                      "}\n"
                      "int G(std::atomic<int>& a) { return a.load(std::memory_order_acquire); }\n")
                  .empty());
}

// ---- acquire/release pairing --------------------------------------------

TEST(AtomicsLint, FlagsUnpairedAcquireAndRelease) {
  const auto violations =
      LintOne("int F(std::atomic<int>& in) { return in.load(std::memory_order_acquire); }\n"
              "void G(std::atomic<int>& out) { out.store(1, std::memory_order_release); }\n");
  EXPECT_EQ(CountKind(violations, Kind::kUnpairedAcquire), 1);
  EXPECT_EQ(CountKind(violations, Kind::kUnpairedRelease), 1);
}

TEST(AtomicsLint, PairingResolvesAcrossFiles) {
  // The release store and the acquire load of `flag` live in different
  // files; linted as one set they pair, so nothing is flagged.
  EXPECT_TRUE(Lint({{"writer.cc",
                     "void W(std::atomic<int>& flag) { flag.store(1, std::memory_order_release); }\n"},
                    {"reader.cc",
                     "int R(std::atomic<int>& flag) { return flag.load(std::memory_order_acquire); }\n"}})
                  .empty());
  // Linted alone, each half is flagged.
  EXPECT_EQ(CountKind(LintOne("void W(std::atomic<int>& flag) {\n"
                              "  flag.store(1, std::memory_order_release);\n"
                              "}\n"),
                      Kind::kUnpairedRelease),
            1);
}

TEST(AtomicsLint, MemberAndParameterPoolByTrimmedUnderscore) {
  // accepting_ (member) and accepting (protocol-function parameter) are the
  // same field; the store through the parameter satisfies the member's
  // acquire load.
  EXPECT_TRUE(Lint({{"a.h",
                     "bool accepting() const { return accepting_.load(std::memory_order_acquire); }\n"},
                    {"b.h",
                     "// seq_cst: total order with the submit-side marker store.\n"
                     "void Stop(std::atomic<bool>& accepting) {\n"
                     "  accepting.store(false, std::memory_order_seq_cst);\n"
                     "}\n"}})
                  .empty());
}

TEST(AtomicsLint, RmwAcqRelCountsForBothSides) {
  EXPECT_TRUE(LintOne("bool F(std::atomic<int>& claim, int& e) {\n"
                      "  return claim.compare_exchange_strong(e, 1, std::memory_order_acq_rel);\n"
                      "}\n")
                  .empty());
}

TEST(AtomicsLint, LooksThroughCacheLineAlignedValue) {
  // head_.value.<op> must lint as field "head", so the producer's release
  // store pairs with the consumer's acquire load of the same index word.
  EXPECT_TRUE(LintOne("void P() { head_.value.store(1, std::memory_order_release); }\n"
                      "int C() { return head_.value.load(std::memory_order_acquire); }\n")
                  .empty());
  const auto violations =
      LintOne("void P() { head_.value.store(1, std::memory_order_release); }\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("'head'"), std::string::npos);
}

TEST(AtomicsLint, SubscriptedFieldLintsAsTheArray) {
  EXPECT_TRUE(LintOne("void P() { slots_[i].store(s, std::memory_order_release); }\n"
                      "void C() { return slots_[j].load(std::memory_order_acquire); }\n")
                  .empty());
}

TEST(AtomicsLint, BumpSingleWriterWithReleaseCountsAsReleaseStore) {
  EXPECT_TRUE(LintOne("void Retire() {\n"
                      "  telemetry::BumpSingleWriter(completed_, 1, std::memory_order_release);\n"
                      "}\n"
                      "int Wait() { return completed_.load(std::memory_order_acquire); }\n")
                  .empty());
  // Without the release argument the helper defaults to relaxed and the
  // acquire load is unpaired.
  const auto violations =
      LintOne("void Retire() { telemetry::BumpSingleWriter(completed_); }\n"
              "int Wait() { return completed_.load(std::memory_order_acquire); }\n");
  EXPECT_EQ(CountKind(violations, Kind::kUnpairedAcquire), 1);
  // ...but it is not a defaulted-order violation: relaxed is the helper's
  // documented contract.
  EXPECT_EQ(CountKind(violations, Kind::kDefaultedOrder), 0);
}

TEST(AtomicsLint, AllowUnpairedTagSuppresses) {
  EXPECT_TRUE(LintOne("int F(std::atomic<int>& in) {\n"
                      "  // concord-atomics: allow-unpaired (release side is in generated code)\n"
                      "  return in.load(std::memory_order_acquire);\n"
                      "}\n")
                  .empty());
}

// ---- shared-struct fields -----------------------------------------------

TEST(AtomicsLint, FlagsPlainFieldInSharedStruct) {
  const auto violations = LintOne("struct FooShared {\n"
                                  "  std::atomic<int> flag{0};\n"
                                  "  int plain = 0;\n"
                                  "};\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Kind::kNonAtomicSharedField);
  EXPECT_EQ(violations[0].line, 3);
  EXPECT_NE(violations[0].message.find("FooShared"), std::string::npos);
}

TEST(AtomicsLint, SharedStructTagWorksOnAnyName) {
  const auto violations = LintOne("// concord-atomics: shared-struct\n"
                                  "struct ProducerLane {\n"
                                  "  int plain = 0;\n"
                                  "};\n");
  EXPECT_EQ(CountKind(violations, Kind::kNonAtomicSharedField), 1);
  // Without the tag, a non-Shared name is not checked.
  EXPECT_TRUE(LintOne("struct ProducerLane {\n  int plain = 0;\n};\n").empty());
}

TEST(AtomicsLint, WhitelistedTypesAndFunctionsNotFlagged) {
  EXPECT_TRUE(LintOne("struct LaneShared {\n"
                      "  LaneShared(std::size_t n) : ring(n) {}\n"
                      "  SpscRing<Request*> ring;\n"
                      "  telemetry::EventRing<Rec> events;\n"
                      "  CacheLineAligned<std::atomic<std::uint64_t>> gen{};\n"
                      "  std::mutex mu;\n"
                      "  const int capacity = 4;\n"
                      "  int Plain() const { return 0; }\n"
                      "};\n")
                  .empty());
}

TEST(AtomicsLint, AllowPlainFieldTagSuppresses) {
  EXPECT_TRUE(LintOne("struct LaneShared {\n"
                      "  // concord-atomics: allow-plain-field (guarded by mu)\n"
                      "  int plain = 0;\n"
                      "};\n")
                  .empty());
}

// ---- fixture + real trees -----------------------------------------------

// The checked-in fixture must trip every rule: this is the teeth test that
// keeps the clean runs over the real trees from being vacuous.
TEST(AtomicsLint, FixtureTripsEveryRule) {
  const std::string fixture =
      std::string(CONCORD_SOURCE_DIR) + "/tests/fixtures/atomics_lint_fixture.cc";
  const auto violations = LintAtomicsTree({fixture}, AtomicsLintConfig{});
  EXPECT_EQ(CountKind(violations, Kind::kUnreadableFile), 0);
  EXPECT_EQ(CountKind(violations, Kind::kDefaultedOrder), 1);
  EXPECT_EQ(CountKind(violations, Kind::kSeqCstWithoutRationale), 1);
  EXPECT_EQ(CountKind(violations, Kind::kUnpairedAcquire), 1);
  EXPECT_EQ(CountKind(violations, Kind::kUnpairedRelease), 1);
  EXPECT_EQ(CountKind(violations, Kind::kNonAtomicSharedField), 1);
  EXPECT_EQ(violations.size(), 5u);
}

// The shipped lock-free hot path lints clean (the same invariant the
// lint.atomics_lint_cli_runtime_telemetry gate enforces through the CLI).
TEST(AtomicsLint, RuntimeAndTelemetryTreesAreClean) {
  const std::string root = CONCORD_SOURCE_DIR;
  const auto violations =
      LintAtomicsTree({root + "/src/runtime", root + "/src/telemetry"}, AtomicsLintConfig{});
  for (const auto& violation : violations) {
    ADD_FAILURE() << AtomicsViolationToString(violation);
  }
}

TEST(AtomicsLint, UnreadablePathReported) {
  const auto violations = LintAtomicsTree({"/nonexistent/path.cc"}, AtomicsLintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Kind::kUnreadableFile);
}

}  // namespace
}  // namespace concord
