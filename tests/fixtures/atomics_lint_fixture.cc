// Deliberately wrong atomics usage: one specimen per atomics-lint rule.
// This file is a lint fixture only — it is never compiled into any target —
// and tests/atomics_lint_test.cc asserts the lint flags every specimen, so
// the CI gate over the real trees cannot be passing vacuously.

#include <atomic>

namespace atomics_lint_fixture {

struct DemoShared {
  std::atomic<int> flag{0};
  int plain_counter = 0;  // specimen: non-atomic field in a cross-thread struct
};

// Specimen: defaulted memory order (silently the strongest one).
inline int DefaultedLoad(std::atomic<int>& counter) { return counter.load(); }

// Specimen: explicit strongest-order store with no comment saying why.
// (The acquire load below pairs the store, so only the rationale rule
// fires here; naming the order in this comment would defeat the specimen.)
inline void UndocumentedTotalOrder(std::atomic<int>& gate) {
  gate.store(1, std::memory_order_seq_cst);
}
inline int GateObserver(std::atomic<int>& gate) {
  return gate.load(std::memory_order_acquire);
}

// Specimen: acquire with no matching release anywhere in the linted set.
inline int LonelyAcquire(std::atomic<int>& lonely_in) {
  return lonely_in.load(std::memory_order_acquire);
}

// Specimen: release with no matching acquire anywhere in the linted set.
inline void LonelyRelease(std::atomic<int>& lonely_out) {
  lonely_out.store(1, std::memory_order_release);
}

}  // namespace atomics_lint_fixture
