// Mutation tests: prove the model checker has teeth. Each case weakens one
// memory-order edge of a lock-free protocol (release -> relaxed, or seq_cst
// -> weaker) and asserts the checker reports a violation with a
// counterexample trace. A mutant that survives would mean the checker could
// not catch that edge regressing in the real code either — so every one of
// these edges is load-bearing, and the clean runs in modelcheck_test.cc are
// meaningful.

#include <gtest/gtest.h>

#include "tests/modelcheck_harnesses.h"

namespace concord::modelcheck_harness {
namespace {

void ExpectCaught(const mc::Result& result, const char* expected_fragment) {
  ASSERT_FALSE(result.ok) << "mutant survived exploration (" << result.executions
                          << " executions) — the checker has no teeth for this edge";
  EXPECT_FALSE(result.violation.trace.empty()) << "violation has no counterexample trace";
  EXPECT_NE(result.violation.message.find(expected_fragment), std::string::npos)
      << "unexpected violation: " << result.violation.message;
}

// SpscRing: the producer publishes the slot payload via its release store of
// head_. Demoted to relaxed, the consumer's payload read races.
TEST(ModelCheckMutation, RingHeadPublishReleaseToRelaxed) {
  mc::Mutation m;
  m.site = "ring";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 0;  // producer only; the consumer's tail store is a separate edge
  ExpectCaught(RingWraparound().Run({m}), "data race");
}

// Same edge through the batched path: TryPushBatch publishes a whole batch
// with one release store.
TEST(ModelCheckMutation, RingBatchPublishReleaseToRelaxed) {
  mc::Mutation m;
  m.site = "ring";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 0;
  ExpectCaught(RingPartialBatch().Run({m}), "data race");
}

// The consumer's release store of tail_ is what licenses the producer to
// overwrite a slot. Demoted, the producer's payload write races with the
// consumer's payload read. Six pushes through the 4-slot ring force actual
// slot reuse (the 4-push clean harness never laps).
TEST(ModelCheckMutation, RingTailRetireReleaseToRelaxed) {
  mc::Mutation m;
  m.site = "ring";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 1;  // consumer side
  ExpectCaught(RingWraparound(6).Run({m}), "data race");
}

// EventRing seqlock: the even sequence publish must be a release store. The
// slot words live in heap storage, so the wildcard site addresses them; the
// thread filter plus `from == release` pins the writer's publish edges.
TEST(ModelCheckMutation, SeqlockEvenPublishReleaseToRelaxed) {
  mc::Mutation m;
  m.site = "*";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 0;  // writer
  ExpectCaught(SeqlockEventRing().Run({m}), "torn read");
}

// The writer's release fence orders the odd mark before the payload words;
// without it the reader's re-check can validate a torn read.
TEST(ModelCheckMutation, SeqlockWriterReleaseFenceToRelaxed) {
  mc::Mutation m;
  m.kind = mc::OpKind::kFence;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 0;  // writer
  ExpectCaught(SeqlockEventRing().Run({m}), "wrong sequence payload");
}

// ProducerSlot claim handover: ReleaseClaim's release store publishes the
// owner's slot state to whichever thread adopts the slot.
TEST(ModelCheckMutation, ClaimHandoverReleaseToRelaxed) {
  mc::Mutation m;
  m.site = "claim";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_release;
  m.to = std::memory_order_relaxed;
  m.thread = 0;  // the releasing owner
  ExpectCaught(ClaimTeardown().Run({m}), "data race on owner_data");
}

// Shutdown handshake: the in_submit marker must be raised with seq_cst so
// the dispatcher's quiescence scan cannot order before it (classic store
// buffering). Demoted to release, an accepted request is lost.
TEST(ModelCheckMutation, InSubmitMarkerSeqCstToRelease) {
  mc::Mutation m;
  m.site = "in_submit";
  m.kind = mc::OpKind::kStore;
  m.from = std::memory_order_seq_cst;
  m.to = std::memory_order_release;
  m.thread = 0;  // submitter
  ExpectCaught(SubmitVsShutdown().Run({m}), "lost");
}

// The submitter's accepting check must also be seq_cst: demoted to relaxed
// it can read a stale `true` after the dispatcher's scan already completed,
// pushing into a ring nobody will drain.
TEST(ModelCheckMutation, AcceptingCheckSeqCstToRelaxed) {
  mc::Mutation m;
  m.site = "accepting";
  m.kind = mc::OpKind::kLoad;
  m.from = std::memory_order_seq_cst;
  m.to = std::memory_order_relaxed;
  m.thread = 0;  // submitter
  ExpectCaught(SubmitVsShutdown().Run({m}), "lost");
}

}  // namespace
}  // namespace concord::modelcheck_harness
