// Tests for the instrumented applications and the in-process load generator.

#include <gtest/gtest.h>

#include <chrono>

#include "src/apps/kernels.h"
#include "src/apps/synthetic.h"
#include "src/loadgen/loadgen.h"
#include "src/runtime/instrument.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

TEST(KernelTest, HistogramChecksum) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<std::uint8_t>(i % 7));
  }
  // counts: value v in 0..6; value*count checksum computed directly.
  std::uint64_t expected = 0;
  std::uint64_t counts[7] = {};
  for (const std::uint8_t byte : data) {
    ++counts[byte];
  }
  for (int v = 0; v < 7; ++v) {
    expected += counts[v] * static_cast<std::uint64_t>(v);
  }
  EXPECT_EQ(KernelHistogram(data), expected);
}

TEST(KernelTest, KmeansAssignsNearestCentroid) {
  const std::vector<double> points = {0.1, 0.9, 5.1, 4.9, 10.0};
  const std::vector<double> centroids = {0.0, 5.0, 10.0};
  // Assignments: 0, 0, 1, 1, 2 -> sum 4.
  EXPECT_EQ(KernelKmeansAssign(points, centroids), 4u);
}

TEST(KernelTest, StringMatchCounts) {
  EXPECT_EQ(KernelStringMatch("abababa", "aba"), 3u);
  EXPECT_EQ(KernelStringMatch("hello", "xyz"), 0u);
  EXPECT_EQ(KernelStringMatch("aaa", ""), 0u);
}

TEST(KernelTest, LinearRegressionSlope) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  EXPECT_EQ(KernelLinearRegression(xs, ys), 3000);  // slope 3.0 * 1000
}

TEST(KernelTest, WordCountFindsMostFrequent) {
  EXPECT_EQ(KernelWordCount("the cat and the dog and the bird"), 3u);  // "the"
  EXPECT_EQ(KernelWordCount(""), 0u);
  EXPECT_EQ(KernelWordCount("   spaced   out   "), 1u);
}

TEST(KernelTest, MatmulDeterministic) {
  const std::uint64_t a = KernelMatmulChecksum(16, 42);
  const std::uint64_t b = KernelMatmulChecksum(16, 42);
  const std::uint64_t c = KernelMatmulChecksum(16, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KernelTest, KernelsExecuteProbes) {
  ResetProbeCount();
  std::vector<std::uint8_t> data(500, 1);
  KernelHistogram(data);
  EXPECT_GE(ProbeCount(), 500u);
}

TEST(SyntheticServiceTest, FromDistributionMapsClasses) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kTpcc);
  const auto* mixture = dynamic_cast<const DiscreteMixtureDistribution*>(spec.distribution.get());
  ASSERT_NE(mixture, nullptr);
  const SyntheticService service = SyntheticService::FromDistribution(*mixture);
  EXPECT_EQ(service.ClassCount(), 5);
  EXPECT_DOUBLE_EQ(service.ServiceUs(0), 5.7);   // Payment
  EXPECT_DOUBLE_EQ(service.ServiceUs(4), 100.0);  // StockLevel
}

TEST(SyntheticServiceTest, SpinTakesRoughlyRequestedTime) {
  const SyntheticService service({200.0});
  const auto start = std::chrono::steady_clock::now();
  service.Handle(RequestView{0, 0, nullptr});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double us =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  // Shared CI hosts overshoot; never undershoot.
  EXPECT_GE(us, 180.0);
}

TEST(LoadgenTest, DrivesRuntimeAndReports) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  const auto* mixture = dynamic_cast<const DiscreteMixtureDistribution*>(spec.distribution.get());
  ASSERT_NE(mixture, nullptr);
  const SyntheticService service = SyntheticService::FromDistribution(*mixture);
  OpenLoopLoadgen loadgen(*mixture, {1.0, 100.0}, /*seed=*/5);

  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 20.0;
  options.work_conserving_dispatcher = true;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&service](const RequestView& view) { service.Handle(view); };
  callbacks.on_complete = loadgen.CompletionHook();
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Mean service ~50.5us on 2 workers -> capacity ~40 kRps; drive gently at
  // 2 kRps so this passes even on a single-CPU host.
  const LoadgenReport report = loadgen.Run(&runtime, 2.0, 300);
  runtime.Shutdown();

  EXPECT_EQ(report.issued, 300u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.completed, 300u);
  EXPECT_GE(report.p50_slowdown, 1.0);
  EXPECT_GE(report.p999_slowdown, report.p50_slowdown);
  EXPECT_GT(report.achieved_krps, 0.0);
}

}  // namespace
}  // namespace concord
