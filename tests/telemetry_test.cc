// Unit tests for the telemetry layer: EventRing semantics (drop-oldest,
// dropped-events accounting, concurrent producer), snapshot aggregation and
// diffing, JSON round-trips with exact 64-bit integers, the recording-cost
// budget, and the probe-hot-path purity argument behind the
// CONCORD_TELEMETRY=OFF byte-identical-codegen guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cycles.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/event_ring.h"
#include "src/telemetry/export.h"
#include "src/telemetry/json.h"
#include "src/telemetry/telemetry.h"

namespace concord::telemetry {
namespace {

struct Event {
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
};

TEST(EventRingTest, PushThenDrainPreservesOrderAndValues) {
  EventRing<Event> ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.Push(Event{i, 3 * i + 1});
  }
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].payload, 3 * i + 1);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.produced(), 5u);
}

TEST(EventRingTest, OverflowDropsOldestAndCountsEveryLoss) {
  EventRing<Event> ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.Push(Event{i, i});
  }
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 8u);
  ASSERT_EQ(out.size(), 8u);
  // The newest `capacity` events survive; everything older was overwritten.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].seq, 12 + i);
  }
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.produced(), 20u);
}

TEST(EventRingTest, DrainInBatchesSeesEveryEventExactlyOnce) {
  EventRing<Event> ring(16);
  std::vector<Event> out;
  std::uint64_t next = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 7; ++i) {
      ring.Push(Event{next, 0});
      ++next;
    }
    ring.Drain(&out);
  }
  ASSERT_EQ(out.size(), 70u);
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRingTest, RoundsCapacityUpToPowerOfTwo) {
  EventRing<Event> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(EventRingTest, ConcurrentProducerNeverBlocksAndEveryEventIsAccounted) {
  // The producer free-runs (never waits on the consumer); the consumer
  // drains in parallel. Every pushed event must end up either read intact
  // or counted as dropped — no loss, no duplication, no tearing.
  constexpr std::uint64_t kEvents = 100000;
  EventRing<Event> ring(64);
  std::vector<Event> out;
  std::atomic<bool> done{false};
  std::thread producer([&ring, &done] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ring.Push(Event{i, i * 7 + 3});
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    ring.Drain(&out);
  }
  ring.Drain(&out);
  producer.join();

  EXPECT_EQ(out.size() + ring.dropped(), kEvents);
  std::uint64_t last = 0;
  bool first = true;
  for (const Event& event : out) {
    // Values must never be torn (payload is a function of seq)...
    EXPECT_EQ(event.payload, event.seq * 7 + 3);
    // ...and reads arrive in publication order.
    if (!first) {
      EXPECT_GT(event.seq, last);
    }
    last = event.seq;
    first = false;
  }
}

TEST(EventRingTest, SequencedDrainExposesMonotonicSequencesAndExactGaps) {
  // The sequenced overload is what the trace collector builds its loss
  // accounting on: the n-th Push ever issued must surface as sequence n, so
  // a consumer can locate *which* records an overwrite destroyed, not just
  // how many.
  EventRing<Event> ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.Push(Event{i, i + 100});
  }
  std::vector<SequencedEvent<Event>> out;
  EXPECT_EQ(ring.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].sequence, i);
    EXPECT_EQ(out[i].value.payload, i + 100);
  }

  // Overflow: push 20 more (sequences 5..24) into the 8-slot ring. The
  // drain must resume at exactly head - capacity, with the gap equal to the
  // dropped count and the surviving sequences still strictly increasing.
  for (std::uint64_t i = 5; i < 25; ++i) {
    ring.Push(Event{i, i + 100});
  }
  std::vector<SequencedEvent<Event>> tail;
  EXPECT_EQ(ring.Drain(&tail), 8u);
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front().sequence, 17u);  // 25 produced - 8 capacity
  EXPECT_EQ(tail.back().sequence, 24u);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].sequence, tail[i - 1].sequence + 1);
    EXPECT_EQ(tail[i].value.payload, tail[i].sequence + 100);
  }
  // Gap between the two drains: sequences 5..16 were overwritten.
  EXPECT_EQ(tail.front().sequence - out.back().sequence - 1, ring.dropped());
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.produced(), 25u);
}

TEST(EventRingTest, SequencedDrainUnderConcurrentProducerNeverRepeatsOrReorders) {
  // Loss detection depends on sequences being strictly increasing across
  // drains even while the producer laps the consumer.
  constexpr std::uint64_t kEvents = 50000;
  EventRing<Event> ring(32);
  std::atomic<bool> done{false};
  std::thread producer([&ring, &done] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ring.Push(Event{i, i * 3 + 1});
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<SequencedEvent<Event>> out;
  while (!done.load(std::memory_order_acquire)) {
    ring.Drain(&out);
  }
  ring.Drain(&out);
  producer.join();

  EXPECT_EQ(out.size() + ring.dropped(), kEvents);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value.seq, out[i].sequence);  // sequence == producer order
    EXPECT_EQ(out[i].value.payload, out[i].sequence * 3 + 1);
    if (i > 0) {
      EXPECT_GT(out[i].sequence, out[i - 1].sequence);
    }
  }
}

TelemetrySnapshot MakeFilledSnapshot() {
  TelemetrySnapshot snapshot;
  snapshot.enabled = true;
  snapshot.tsc_ghz = 2.25;
  WorkerSnapshot w0;
  w0.probe_polls = (std::uint64_t{1} << 62) + 12345;  // exceeds double's mantissa
  w0.probe_yields = 7;
  w0.preemptions_requested = 9;
  w0.requests_started = 100;
  w0.segments_run = 107;
  w0.requests_completed = 100;
  w0.idle_cycles = 11;
  w0.busy_cycles = 22;
  w0.fiber_switches = 107;
  w0.jbsq_pushes = 107;
  w0.max_inflight = 2;
  WorkerSnapshot w1;
  w1.probe_polls = 3;
  w1.max_inflight = 1;
  snapshot.workers = {w0, w1};
  snapshot.dispatcher.probe_polls = 5;
  snapshot.dispatcher.quanta_run = 6;
  snapshot.dispatcher.requests_started = 2;
  snapshot.dispatcher.requests_completed = 2;
  snapshot.dispatcher.events_drained = 100;
  snapshot.dispatcher.ring_dropped = 1;
  snapshot.dispatcher.history_dropped = 4;
  RequestLifecycle lifecycle;
  lifecycle.id = (std::uint64_t{1} << 61) + 99;
  lifecycle.request_class = 3;
  lifecycle.first_worker = 0;
  lifecycle.completion_worker = 1;
  lifecycle.arrival_tsc = (std::uint64_t{1} << 60) + 1;
  lifecycle.dispatch_tsc = (std::uint64_t{1} << 60) + 2;
  lifecycle.first_run_tsc = (std::uint64_t{1} << 60) + 3;
  lifecycle.finish_tsc = (std::uint64_t{1} << 60) + 9;
  lifecycle.RecordPreemption((std::uint64_t{1} << 60) + 4);
  lifecycle.RecordPreemption((std::uint64_t{1} << 60) + 6);
  snapshot.lifecycles.push_back(lifecycle);
  return snapshot;
}

TEST(TelemetrySnapshotTest, TotalsSumCountersButMaxInflightIsAMax) {
  const TelemetrySnapshot snapshot = MakeFilledSnapshot();
  const WorkerSnapshot totals = snapshot.Totals();
  EXPECT_EQ(totals.probe_polls, (std::uint64_t{1} << 62) + 12345 + 3);
  EXPECT_EQ(totals.probe_yields, 7u);
  EXPECT_EQ(totals.preemptions_requested, 9u);
  EXPECT_EQ(totals.max_inflight, 2u);  // max(2, 1), not 3
  EXPECT_EQ(snapshot.PreemptionsHonored(), 7u);
  EXPECT_EQ(snapshot.PreemptionsRequested(), 9u);
  EXPECT_EQ(snapshot.RequestsCompleted(), 102u);  // workers + dispatcher
}

TEST(TelemetrySnapshotTest, DiffSubtractsCounterWise) {
  TelemetrySnapshot before = MakeFilledSnapshot();
  TelemetrySnapshot after = MakeFilledSnapshot();
  after.workers[0].probe_polls += 50;
  after.workers[1].probe_polls += 1;
  after.dispatcher.quanta_run += 10;
  const TelemetrySnapshot diff = TelemetrySnapshot::Diff(before, after);
  EXPECT_EQ(diff.workers[0].probe_polls, 50u);
  EXPECT_EQ(diff.workers[1].probe_polls, 1u);
  EXPECT_EQ(diff.workers[0].probe_yields, 0u);
  EXPECT_EQ(diff.dispatcher.quanta_run, 10u);
  // High-water marks and lifecycles come from `after`, not a subtraction.
  EXPECT_EQ(diff.workers[0].max_inflight, after.workers[0].max_inflight);
  EXPECT_EQ(diff.lifecycles.size(), after.lifecycles.size());
}

TEST(TelemetryJsonTest, SnapshotRoundTripPreservesEveryFieldExactly) {
  const TelemetrySnapshot snapshot = MakeFilledSnapshot();
  const std::string json = snapshot.ToJson();
  TelemetrySnapshot parsed;
  ASSERT_TRUE(TelemetrySnapshot::FromJson(json, &parsed));

  EXPECT_EQ(parsed.enabled, snapshot.enabled);
  EXPECT_DOUBLE_EQ(parsed.tsc_ghz, snapshot.tsc_ghz);
  ASSERT_EQ(parsed.workers.size(), snapshot.workers.size());
  // The 2^62-magnitude counter survives exactly (doubles would round it).
  EXPECT_EQ(parsed.workers[0].probe_polls, (std::uint64_t{1} << 62) + 12345);
  EXPECT_EQ(parsed.workers[0].probe_yields, snapshot.workers[0].probe_yields);
  EXPECT_EQ(parsed.workers[0].preemptions_requested,
            snapshot.workers[0].preemptions_requested);
  EXPECT_EQ(parsed.workers[0].idle_cycles, snapshot.workers[0].idle_cycles);
  EXPECT_EQ(parsed.workers[0].busy_cycles, snapshot.workers[0].busy_cycles);
  EXPECT_EQ(parsed.workers[0].max_inflight, snapshot.workers[0].max_inflight);
  EXPECT_EQ(parsed.workers[1].probe_polls, snapshot.workers[1].probe_polls);
  EXPECT_EQ(parsed.dispatcher.quanta_run, snapshot.dispatcher.quanta_run);
  EXPECT_EQ(parsed.dispatcher.ring_dropped, snapshot.dispatcher.ring_dropped);
  EXPECT_EQ(parsed.dispatcher.history_dropped, snapshot.dispatcher.history_dropped);
  ASSERT_EQ(parsed.lifecycles.size(), 1u);
  EXPECT_EQ(parsed.lifecycles[0].id, snapshot.lifecycles[0].id);
  EXPECT_EQ(parsed.lifecycles[0].request_class, snapshot.lifecycles[0].request_class);
  EXPECT_EQ(parsed.lifecycles[0].first_worker, snapshot.lifecycles[0].first_worker);
  EXPECT_EQ(parsed.lifecycles[0].completion_worker,
            snapshot.lifecycles[0].completion_worker);
  EXPECT_EQ(parsed.lifecycles[0].preemptions, 2);
  EXPECT_EQ(parsed.lifecycles[0].arrival_tsc, snapshot.lifecycles[0].arrival_tsc);
  EXPECT_EQ(parsed.lifecycles[0].dispatch_tsc, snapshot.lifecycles[0].dispatch_tsc);
  EXPECT_EQ(parsed.lifecycles[0].first_run_tsc, snapshot.lifecycles[0].first_run_tsc);
  EXPECT_EQ(parsed.lifecycles[0].finish_tsc, snapshot.lifecycles[0].finish_tsc);
  EXPECT_EQ(parsed.lifecycles[0].preempt_tsc[0], snapshot.lifecycles[0].preempt_tsc[0]);
  EXPECT_EQ(parsed.lifecycles[0].preempt_tsc[1], snapshot.lifecycles[0].preempt_tsc[1]);

  // Serializing the parsed snapshot reproduces the document byte-for-byte.
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(TelemetryJsonTest, FromJsonRejectsMalformedDocuments) {
  TelemetrySnapshot out;
  EXPECT_FALSE(TelemetrySnapshot::FromJson("", &out));
  EXPECT_FALSE(TelemetrySnapshot::FromJson("not json", &out));
  EXPECT_FALSE(TelemetrySnapshot::FromJson("[1, 2, 3]", &out));
  EXPECT_FALSE(TelemetrySnapshot::FromJson(R"({"schema": "something.else"})", &out));
  const std::string valid = MakeFilledSnapshot().ToJson();
  EXPECT_FALSE(TelemetrySnapshot::FromJson(valid.substr(0, valid.size() / 2), &out));
  EXPECT_FALSE(TelemetrySnapshot::FromJson(valid + "trailing", &out));
}

TEST(TelemetryJsonTest, JsonValueKeepsUint64Exact) {
  const std::uint64_t big = (std::uint64_t{1} << 63) + 7;
  JsonValue object = JsonValue::MakeObject();
  object.Set("value", JsonValue::MakeUint(big));
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(object.Dump(), &parsed));
  EXPECT_EQ(parsed.GetUint("value"), big);
}

TEST(TelemetryExportTest, TelemetryOutPathParsesFlagAndWritesFile) {
  std::string flag = "--telemetry-out=/tmp/concord_telemetry_test.json";
  char prog[] = "prog";
  char* argv[] = {prog, flag.data()};
  EXPECT_EQ(TelemetryOutPath(2, argv), "/tmp/concord_telemetry_test.json");
  char* no_flag_argv[] = {prog};
  EXPECT_EQ(TelemetryOutPath(1, no_flag_argv), "");

  const TelemetrySnapshot snapshot = MakeFilledSnapshot();
  ASSERT_TRUE(WriteSnapshotJson(snapshot, "/tmp/concord_telemetry_test.json"));
  std::ifstream in("/tmp/concord_telemetry_test.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  TelemetrySnapshot parsed;
  ASSERT_TRUE(TelemetrySnapshot::FromJson(buffer.str(), &parsed));
  EXPECT_EQ(parsed.workers.size(), snapshot.workers.size());
  EXPECT_FALSE(WriteSnapshotJson(snapshot, "/nonexistent-dir/x.json"));
}

// ---------------------------------------------------------------------------
// Live runtime coverage
// ---------------------------------------------------------------------------

TEST(TelemetryRuntimeTest, SnapshotAccountsEveryRequestAfterShutdown) {
  constexpr std::uint64_t kRequests = 300;
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();  // joins threads; the dispatcher's final ring drain ran
  const TelemetrySnapshot snapshot = runtime.GetTelemetry();

  EXPECT_EQ(snapshot.enabled, kEnabled);
  ASSERT_EQ(snapshot.workers.size(), 2u);
  if (!kEnabled) {
    const WorkerSnapshot totals = snapshot.Totals();
    EXPECT_EQ(totals.probe_polls + totals.probe_yields + totals.requests_completed, 0u);
    EXPECT_EQ(snapshot.lifecycles.size(), 0u);
    return;  // the rest of the contract only applies to enabled builds
  }
  const WorkerSnapshot totals = snapshot.Totals();
  EXPECT_EQ(snapshot.RequestsCompleted(), kRequests);
  EXPECT_EQ(totals.requests_started + snapshot.dispatcher.requests_started, kRequests);
  EXPECT_GE(totals.segments_run, totals.requests_started);
  EXPECT_GT(snapshot.tsc_ghz, 0.0);
  // Every worker-completed lifecycle was drained or accounted as dropped.
  EXPECT_EQ(snapshot.dispatcher.events_drained + snapshot.dispatcher.ring_dropped,
            totals.requests_completed);
  // The default history (4096) holds all 300 lifecycles.
  EXPECT_EQ(snapshot.lifecycles.size() + snapshot.dispatcher.ring_dropped +
                snapshot.dispatcher.history_dropped,
            kRequests);
}

TEST(TelemetryRuntimeTest, HistoryOverflowDropsOldestWithExactAccounting) {
  if (!kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  constexpr std::uint64_t kRequests = 60;
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  options.telemetry_history_capacity = 8;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  const TelemetrySnapshot snapshot = runtime.GetTelemetry();
  EXPECT_EQ(snapshot.lifecycles.size(), 8u);
  EXPECT_EQ(snapshot.dispatcher.ring_dropped, 0u);  // 60 events never lap a 256 ring
  EXPECT_EQ(snapshot.dispatcher.history_dropped, kRequests - 8);
}

TEST(TelemetryRuntimeTest, AgreesWithRuntimeStatsAndCrossLayerInvariants) {
  if (!kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // Force some preemptions: one worker, 50us quantum, multi-millisecond
  // probed spins with short requests queued behind them (segments must
  // outlast an OS timeslice for the dispatcher to observe quantum expiry on
  // a one-CPU host).
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = false;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 10000.0 : 1.0);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 40; ++i) {
    while (!runtime.Submit(i, i < 3 ? 1 : 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  const Runtime::Stats stats = runtime.GetStats();
  const TelemetrySnapshot snapshot = runtime.GetTelemetry();
  const WorkerSnapshot totals = snapshot.Totals();

  // A worker segment ends unfinished exactly when a probe yielded, and each
  // such request is re-queued once by the dispatcher: the two layers count
  // the same thing.
  EXPECT_EQ(totals.probe_yields, stats.preemptions);
  EXPECT_GT(stats.preemptions, 0u);  // the forced-preemption setup worked
  // Fiber switch-ins on worker threads are exactly the worker segments.
  EXPECT_EQ(totals.fiber_switches, totals.segments_run);
  // Each preemption consumed one signal; extra signals may go unhonored.
  EXPECT_GE(totals.preemptions_requested, totals.probe_yields);
  // Resumes traverse the JBSQ inboxes too.
  EXPECT_EQ(totals.jbsq_pushes, totals.segments_run);
  EXPECT_EQ(totals.requests_completed, 40u);
}

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CONCORD_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CONCORD_TEST_SANITIZED 1
#endif
#endif

TEST(TelemetryRuntimeTest, RecordingCostStaysWithinPerRequestBudget) {
#ifdef CONCORD_TEST_SANITIZED
  GTEST_SKIP() << "cycle budget is meaningless under sanitizer instrumentation";
#endif
  // docs/telemetry.md budgets the per-request recording cost (a handful of
  // relaxed increments, TSC reads, and one EventRing push) at well under a
  // microsecond — <1% of any paper workload with >= 100us of service time.
  // Measure the dominant term, the ring push, and assert a generous bound.
  EventRing<RequestLifecycle> ring(256);
  RequestLifecycle lifecycle;
  lifecycle.id = 1;
  constexpr int kTrials = 5;
  constexpr std::uint64_t kPushes = 20000;
  double best_mean_cycles = 1e18;
  std::vector<RequestLifecycle> sink;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t start = ReadTsc();
    for (std::uint64_t i = 0; i < kPushes; ++i) {
      ring.Push(lifecycle);
    }
    const std::uint64_t elapsed = ReadTsc() - start;
    best_mean_cycles =
        std::min(best_mean_cycles, static_cast<double>(elapsed) / static_cast<double>(kPushes));
    sink.clear();
    ring.Drain(&sink);
  }
  // ~40-100 cycles in practice; 2000 cycles (~1us at 2GHz) is the budget
  // ceiling with a wide margin for contended CI hosts.
  EXPECT_LT(best_mean_cycles, 2000.0);
}

// ---------------------------------------------------------------------------
// Probe hot-path purity (the CONCORD_TELEMETRY=OFF codegen guarantee)
// ---------------------------------------------------------------------------

std::string ReadSourceFile(const std::string& relative) {
  std::ifstream in(std::string(CONCORD_SOURCE_DIR) + "/" + relative);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TelemetryCodegenTest, ProbeHotPathSourcesAreTelemetryFree) {
  // The OFF-build guarantee that probe() codegen is byte-identical to an
  // untelemetered build holds *by construction*: the code a CONCORD_PROBE()
  // expands through (probe.cc and instrument.h) contains no telemetry
  // reference and no CONCORD_TELEMETRY conditional at all, in either build
  // mode. Probe polls are derived from the pre-existing thread-local probe
  // counter at segment boundaries instead. This test pins that construction.
  const std::string probe_cc = ReadSourceFile("src/runtime/probe.cc");
  ASSERT_FALSE(probe_cc.empty());
  EXPECT_EQ(probe_cc.find("telemetry"), std::string::npos);
  EXPECT_EQ(probe_cc.find("TELEMETRY"), std::string::npos);
  EXPECT_EQ(probe_cc.find("#if"), std::string::npos);

  const std::string instrument_h = ReadSourceFile("src/runtime/instrument.h");
  ASSERT_FALSE(instrument_h.empty());
  EXPECT_EQ(instrument_h.find("CONCORD_TELEMETRY"), std::string::npos);
  EXPECT_EQ(instrument_h.find("telemetry::"), std::string::npos);
  EXPECT_EQ(instrument_h.find("src/telemetry"), std::string::npos);
}

}  // namespace
}  // namespace concord::telemetry
