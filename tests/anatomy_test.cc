// Latency-anatomy suite (ctest label `anatomy`; docs/observability.md).
//
// The anatomy layer's whole value is an *exact* identity: the six stage
// durations are integer TSC subtractions along the lifecycle stamp chain, so
// for every valid lifecycle they partition [arrival, complete] with no
// rounding. This suite pins that identity three ways:
//
//   - unit: ComputeStageVector on hand-built stamp chains (exact stage
//     values, the Sum() == latency_tsc identity, and the invalid cases —
//     missing stamps, non-monotone chains, service exceeding its window);
//   - accounting: AnatomyCounters/AnatomySnapshot fold, histogram-total ==
//     completed per stage, and the Accumulate/Subtract round trip the
//     sharded merge and the windowed diff rely on;
//   - live: a seeded randomized workload through every policy x 1/2/4
//     shards; every lifecycle the runtime retained must satisfy the exact
//     identity, and the per-class aggregation must account for every
//     completed request (completed + invalid == requests completed,
//     histogram total == completed for every class and stage).
//
// The randomized case draws its shape from CONCORD_TEST_SEED (strtoull
// base-0; fixed default keeps CI deterministic) and prints the seed via
// SCOPED_TRACE on failure.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/instrument.h"
#include "src/runtime/policy.h"
#include "src/runtime/runtime.h"
#include "src/runtime/sharded_runtime.h"
#include "src/telemetry/anatomy.h"
#include "src/telemetry/telemetry.h"

namespace concord {
namespace {

using telemetry::AnatomyBucket;
using telemetry::AnatomyClassSlot;
using telemetry::AnatomyCounters;
using telemetry::AnatomySnapshot;
using telemetry::ComputeStageVector;
using telemetry::kAnatomyClassSlots;
using telemetry::kAnatomyStages;
using telemetry::RequestLifecycle;
using telemetry::Stage;
using telemetry::StageVector;

std::uint64_t TestSeed() {
  if (const char* env = std::getenv("CONCORD_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 20260809;
}

// A well-formed unpreempted lifecycle with distinct per-stage durations.
RequestLifecycle MakeLifecycle() {
  RequestLifecycle lifecycle;
  lifecycle.id = 42;
  lifecycle.request_class = 1;
  lifecycle.arrival_tsc = 1000;
  lifecycle.adopt_tsc = 1100;     // ingress_wait = 100
  lifecycle.dispatch_tsc = 1300;  // queue_wait   = 200
  lifecycle.first_run_tsc = 1600; // inbox_wait   = 300
  lifecycle.finish_tsc = 2700;    // run window   = 1100
  lifecycle.service_tsc = 700;    // => requeue_wait = 400
  lifecycle.complete_tsc = 3200;  // drain        = 500
  return lifecycle;
}

TEST(StageVectorTest, ExactPartitionOfHandBuiltChain) {
  const StageVector vector = ComputeStageVector(MakeLifecycle());
  ASSERT_TRUE(vector.valid);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kIngressWait)], 100u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kQueueWait)], 200u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kInboxWait)], 300u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kService)], 700u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kRequeueWait)], 400u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kDrain)], 500u);
  EXPECT_EQ(vector.latency_tsc, 2200u);
  EXPECT_EQ(vector.Sum(), vector.latency_tsc);
}

TEST(StageVectorTest, ZeroWidthStagesStillPartitionExactly) {
  // Instantaneous handoffs (equal adjacent stamps) are valid: the stage is
  // zero ticks wide and the identity still telescopes.
  RequestLifecycle lifecycle = MakeLifecycle();
  lifecycle.adopt_tsc = lifecycle.arrival_tsc;
  lifecycle.dispatch_tsc = lifecycle.adopt_tsc;
  lifecycle.service_tsc = lifecycle.finish_tsc - lifecycle.first_run_tsc;  // no requeue
  const StageVector vector = ComputeStageVector(lifecycle);
  ASSERT_TRUE(vector.valid);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kIngressWait)], 0u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kQueueWait)], 0u);
  EXPECT_EQ(vector.stage_tsc[static_cast<int>(Stage::kRequeueWait)], 0u);
  EXPECT_EQ(vector.Sum(), vector.latency_tsc);
}

TEST(StageVectorTest, MissingStampInvalidatesVector) {
  // Pre-anatomy imports carry no adopt/complete stamps; the vector must
  // declare itself invalid rather than fabricate stages.
  for (int missing = 0; missing < 3; ++missing) {
    RequestLifecycle lifecycle = MakeLifecycle();
    switch (missing) {
      case 0: lifecycle.adopt_tsc = 0; break;
      case 1: lifecycle.complete_tsc = 0; break;
      default: lifecycle.first_run_tsc = 0; break;
    }
    const StageVector vector = ComputeStageVector(lifecycle);
    EXPECT_FALSE(vector.valid) << "missing stamp case " << missing;
    EXPECT_EQ(vector.Sum(), 0u) << "invalid vectors must be all-zero";
  }
}

TEST(StageVectorTest, NonMonotoneChainInvalidatesVector) {
  RequestLifecycle lifecycle = MakeLifecycle();
  lifecycle.dispatch_tsc = lifecycle.adopt_tsc - 50;  // dispatch before adopt
  EXPECT_FALSE(ComputeStageVector(lifecycle).valid);
}

TEST(StageVectorTest, ServiceExceedingRunWindowInvalidatesVector) {
  RequestLifecycle lifecycle = MakeLifecycle();
  lifecycle.service_tsc = (lifecycle.finish_tsc - lifecycle.first_run_tsc) + 1;
  EXPECT_FALSE(ComputeStageVector(lifecycle).valid);
}

TEST(AnatomyBucketTest, BucketIsBitWidthOfTicks) {
  EXPECT_EQ(AnatomyBucket(0), 0u);
  EXPECT_EQ(AnatomyBucket(1), 1u);
  EXPECT_EQ(AnatomyBucket(2), 2u);
  EXPECT_EQ(AnatomyBucket(3), 2u);
  EXPECT_EQ(AnatomyBucket(4), 3u);
  EXPECT_EQ(AnatomyBucket((1u << 30)), 31u);
  // Durations past the last bucket edge clamp instead of overflowing.
  EXPECT_EQ(AnatomyBucket(std::uint64_t{1} << 40), telemetry::kAnatomyBuckets - 1);
}

TEST(AnatomyBucketTest, ClassSlotsFoldHighAndNegativeClasses) {
  EXPECT_EQ(AnatomyClassSlot(0), 0u);
  EXPECT_EQ(AnatomyClassSlot(6), 6u);
  EXPECT_EQ(AnatomyClassSlot(7), kAnatomyClassSlots - 1);
  EXPECT_EQ(AnatomyClassSlot(12), kAnatomyClassSlots - 1);
  EXPECT_EQ(AnatomyClassSlot(-3), kAnatomyClassSlots - 1);
}

TEST(AnatomyCountersTest, FoldKeepsHistogramTotalEqualToCompleted) {
  AnatomyCounters counters;
  const std::uint64_t seed = TestSeed();
  SCOPED_TRACE("reproduce with CONCORD_TEST_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> gap(0, 5000);
  std::uniform_int_distribution<std::int32_t> class_dist(0, 9);
  constexpr int kFolds = 500;
  std::uint64_t valid_folds = 0;
  for (int i = 0; i < kFolds; ++i) {
    RequestLifecycle lifecycle;
    lifecycle.request_class = class_dist(rng);
    lifecycle.arrival_tsc = 1 + gap(rng);
    lifecycle.adopt_tsc = lifecycle.arrival_tsc + gap(rng);
    lifecycle.dispatch_tsc = lifecycle.adopt_tsc + gap(rng);
    lifecycle.first_run_tsc = lifecycle.dispatch_tsc + gap(rng);
    const std::uint64_t service = gap(rng);
    const std::uint64_t requeue = gap(rng);
    lifecycle.service_tsc = service;
    lifecycle.finish_tsc = lifecycle.first_run_tsc + service + requeue;
    lifecycle.complete_tsc = lifecycle.finish_tsc + gap(rng);
    const StageVector vector = ComputeStageVector(lifecycle);
    ASSERT_TRUE(vector.valid);
    EXPECT_EQ(vector.Sum(), vector.latency_tsc);
    counters.Record(vector, lifecycle.request_class);
    ++valid_folds;
  }
  // Invalid vectors bump only `invalid`, never a histogram.
  counters.Record(StageVector{}, 0);

  const AnatomySnapshot snapshot = AnatomySnapshot::Capture(counters);
  EXPECT_EQ(snapshot.TotalCompleted(), valid_folds);
  EXPECT_EQ(snapshot.TotalInvalid(), 1u);
  for (std::size_t slot = 0; slot < kAnatomyClassSlots; ++slot) {
    for (int stage = 0; stage < kAnatomyStages; ++stage) {
      EXPECT_EQ(snapshot.classes[slot].HistogramTotal(stage), snapshot.classes[slot].completed)
          << "class slot " << slot << " stage " << stage;
    }
  }
}

TEST(AnatomyCountersTest, AccumulateAndSubtractRoundTrip) {
  AnatomyCounters counters_a;
  AnatomyCounters counters_b;
  const RequestLifecycle lifecycle = MakeLifecycle();
  const StageVector vector = ComputeStageVector(lifecycle);
  ASSERT_TRUE(vector.valid);
  counters_a.Record(vector, 0);
  counters_a.Record(vector, 3);
  counters_b.Record(vector, 3);

  AnatomySnapshot merged = AnatomySnapshot::Capture(counters_a);
  merged.Accumulate(AnatomySnapshot::Capture(counters_b));  // the sharded merge
  EXPECT_EQ(merged.TotalCompleted(), 3u);
  EXPECT_EQ(merged.classes[3].completed, 2u);
  EXPECT_EQ(merged.classes[3].stage_sum_tsc[static_cast<int>(Stage::kService)],
            2 * vector.stage_tsc[static_cast<int>(Stage::kService)]);

  merged.Subtract(AnatomySnapshot::Capture(counters_b));  // the windowed diff
  const AnatomySnapshot original = AnatomySnapshot::Capture(counters_a);
  EXPECT_EQ(merged.TotalCompleted(), original.TotalCompleted());
  for (std::size_t slot = 0; slot < kAnatomyClassSlots; ++slot) {
    EXPECT_EQ(merged.classes[slot].completed, original.classes[slot].completed);
    for (int stage = 0; stage < kAnatomyStages; ++stage) {
      EXPECT_EQ(merged.classes[slot].HistogramTotal(stage),
                original.classes[slot].HistogramTotal(stage));
    }
  }
}

TEST(AnatomySnapshotTest, SummaryTextListsNonEmptyClasses) {
  AnatomyCounters counters;
  counters.Record(ComputeStageVector(MakeLifecycle()), 1);
  const AnatomySnapshot snapshot = AnatomySnapshot::Capture(counters);
  const std::string text = snapshot.SummaryText(/*tsc_ghz=*/1.0);
  EXPECT_NE(text.find("class 1"), std::string::npos);
  EXPECT_EQ(text.find("class 0"), std::string::npos) << "empty classes must not be listed";
  EXPECT_GT(snapshot.MeanStageUs(1, static_cast<int>(Stage::kService), 1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Live identity: every policy x 1/2/4 shards, seeded randomized workload.
// ---------------------------------------------------------------------------

struct AnatomyParam {
  PolicyKind policy;
  int shards;
};

std::string ParamName(const testing::TestParamInfo<AnatomyParam>& info) {
  std::string name = PolicyKindName(info.param.policy);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_x" + std::to_string(info.param.shards);
}

class AnatomyLiveTest : public testing::TestWithParam<AnatomyParam> {};

TEST_P(AnatomyLiveTest, RandomizedWorkloadSatisfiesExactStageIdentity) {
  if constexpr (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const std::uint64_t seed = TestSeed();
  SCOPED_TRACE("reproduce with CONCORD_TEST_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> count_dist(150, 400);
  std::uniform_real_distribution<double> long_fraction_dist(0.05, 0.25);
  std::uniform_real_distribution<double> short_us_dist(0.2, 1.0);
  std::uniform_real_distribution<double> long_us_dist(5.0, 20.0);
  const auto request_count = static_cast<std::uint64_t>(count_dist(rng));
  const double long_fraction = long_fraction_dist(rng);
  const double short_us = short_us_dist(rng);
  const double long_us = long_us_dist(rng);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 50.0;
  options.shard.jbsq_depth = 2;
  options.shard.policy = GetParam().policy;
  options.shard_count = GetParam().shards;
  // Retain every lifecycle so the identity is checked for all completions.
  options.shard.telemetry_history_capacity = 4096;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? long_us : short_us);
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < request_count; ++i) {
    const int request_class = unit(rng) < long_fraction ? 1 : 0;
    while (!runtime.Submit(i, request_class, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  const telemetry::TelemetrySnapshot merged = runtime.GetTelemetry();
  EXPECT_EQ(merged.policy, PolicyKindName(GetParam().policy));
  EXPECT_EQ(merged.RequestsCompleted(), request_count);
  // Every completed request folded exactly once, and every fold was a valid
  // stage vector: the live stamp chain is monotone by construction.
  EXPECT_EQ(merged.anatomy.TotalCompleted() + merged.anatomy.TotalInvalid(), request_count);
  EXPECT_EQ(merged.anatomy.TotalInvalid(), 0u);
  for (std::size_t slot = 0; slot < kAnatomyClassSlots; ++slot) {
    for (int stage = 0; stage < kAnatomyStages; ++stage) {
      EXPECT_EQ(merged.anatomy.classes[slot].HistogramTotal(stage),
                merged.anatomy.classes[slot].completed)
          << "class slot " << slot << " stage " << stage;
    }
  }

  std::uint64_t history_total = 0;
  std::array<std::uint64_t, kAnatomyClassSlots> per_class_seen{};
  for (int s = 0; s < runtime.shard_count(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const telemetry::TelemetrySnapshot shard_telemetry = runtime.GetShardTelemetry(s);
    for (const RequestLifecycle& lifecycle : shard_telemetry.lifecycles) {
      const StageVector vector = ComputeStageVector(lifecycle);
      ASSERT_TRUE(vector.valid) << "request " << lifecycle.id << " has a broken stamp chain";
      // The tentpole identity, exact in integer TSC units per request.
      EXPECT_EQ(vector.Sum(), vector.latency_tsc) << "request " << lifecycle.id;
      EXPECT_EQ(vector.latency_tsc, lifecycle.complete_tsc - lifecycle.arrival_tsc);
      ++per_class_seen[AnatomyClassSlot(lifecycle.request_class)];
      ++history_total;
    }
  }
  // History capacity exceeds the request count, so the bounded history
  // retained everything and the aggregation must agree with it per class.
  EXPECT_EQ(history_total, request_count);
  for (std::size_t slot = 0; slot < kAnatomyClassSlots; ++slot) {
    EXPECT_EQ(merged.anatomy.classes[slot].completed, per_class_seen[slot])
        << "class slot " << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndShards, AnatomyLiveTest,
    testing::Values(AnatomyParam{PolicyKind::kConcordJbsq, 1},
                    AnatomyParam{PolicyKind::kConcordJbsq, 2},
                    AnatomyParam{PolicyKind::kConcordJbsq, 4},
                    AnatomyParam{PolicyKind::kSingleQueuePreemptive, 1},
                    AnatomyParam{PolicyKind::kSingleQueuePreemptive, 2},
                    AnatomyParam{PolicyKind::kSingleQueuePreemptive, 4},
                    AnatomyParam{PolicyKind::kFcfsNonPreemptive, 1},
                    AnatomyParam{PolicyKind::kFcfsNonPreemptive, 2},
                    AnatomyParam{PolicyKind::kFcfsNonPreemptive, 4},
                    AnatomyParam{PolicyKind::kEdfNonPreemptive, 1},
                    AnatomyParam{PolicyKind::kEdfNonPreemptive, 2},
                    AnatomyParam{PolicyKind::kEdfNonPreemptive, 4},
                    AnatomyParam{PolicyKind::kApproxSrpt, 1},
                    AnatomyParam{PolicyKind::kApproxSrpt, 2},
                    AnatomyParam{PolicyKind::kApproxSrpt, 4},
                    AnatomyParam{PolicyKind::kConcordJbsqAdaptive, 1},
                    AnatomyParam{PolicyKind::kConcordJbsqAdaptive, 2},
                    AnatomyParam{PolicyKind::kConcordJbsqAdaptive, 4}),
    ParamName);

// The anatomy block must survive the JSON round trip (additive
// concord.telemetry.v1 field; docs/telemetry.md).
TEST(AnatomyJsonTest, SnapshotRoundTripsThroughJson) {
  if constexpr (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(0.5); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 32; ++i) {
    while (!runtime.Submit(i, static_cast<int>(i % 3), nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  ASSERT_EQ(snapshot.anatomy.TotalCompleted(), 32u);
  telemetry::TelemetrySnapshot decoded;
  ASSERT_TRUE(telemetry::TelemetrySnapshot::FromJson(snapshot.ToJson(), &decoded));
  EXPECT_EQ(decoded.policy, snapshot.policy);
  EXPECT_EQ(decoded.anatomy.TotalCompleted(), snapshot.anatomy.TotalCompleted());
  EXPECT_EQ(decoded.anatomy.TotalInvalid(), snapshot.anatomy.TotalInvalid());
  for (std::size_t slot = 0; slot < kAnatomyClassSlots; ++slot) {
    EXPECT_EQ(decoded.anatomy.classes[slot].completed, snapshot.anatomy.classes[slot].completed);
    for (std::size_t stage = 0; stage < static_cast<std::size_t>(kAnatomyStages); ++stage) {
      EXPECT_EQ(decoded.anatomy.classes[slot].stage_sum_tsc[stage],
                snapshot.anatomy.classes[slot].stage_sum_tsc[stage])
          << "class slot " << slot << " stage " << stage;
      EXPECT_EQ(decoded.anatomy.classes[slot].HistogramTotal(static_cast<int>(stage)),
                snapshot.anatomy.classes[slot].HistogramTotal(static_cast<int>(stage)));
    }
  }
}

}  // namespace
}  // namespace concord
