// Tests for the model extensions beyond the paper's core evaluation:
// work-stealing single-logical-queue systems (§6), multi-dispatcher
// replication (§6), and API-level preemption disabling (§3.1's Shinjuku
// anecdote).

#include <gtest/gtest.h>

#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/replication.h"
#include "src/model/server_model.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

constexpr std::size_t kSmallRun = 20000;

TEST(WorkStealingTest, CompletesEveryRequest) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ServerModel model(MakeCoopWorkStealing(8, UsToNs(5.0)), DefaultCosts(), 21);
  const RunResult result = model.Run(*spec.distribution, 100.0, kSmallRun);
  EXPECT_EQ(result.completed, kSmallRun);
}

TEST(WorkStealingTest, PreemptsLongRequests) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ServerModel model(MakeCoopWorkStealing(8, UsToNs(5.0)), DefaultCosts(), 22);
  const RunResult result = model.Run(*spec.distribution, 120.0, kSmallRun);
  EXPECT_GT(result.preemptions, kSmallRun / 4);
}

TEST(WorkStealingTest, StealingBalancesSkewedSteering) {
  // Round-robin steering plus stealing keeps workers from idling while a
  // peer holds a backlog: at moderate load every worker ends up busy a
  // similar fraction of the time despite the bimodal service times.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ServerModel model(MakeCoopWorkStealing(8, UsToNs(5.0)), DefaultCosts(), 23);
  const RunResult result = model.Run(*spec.distribution, 110.0, kSmallRun);
  double min_busy = 1.0;
  double max_busy = 0.0;
  for (const double busy : result.worker_busy_fraction) {
    min_busy = std::min(min_busy, busy);
    max_busy = std::max(max_busy, busy);
  }
  EXPECT_GT(min_busy, max_busy * 0.7);
}

TEST(WorkStealingTest, NoDispatcherBottleneck) {
  // §6's motivation: a work-stealing system has no dispatch serialization,
  // so on Fixed(1us) it sustains loads far beyond the single-dispatcher
  // systems' dispatcher bound (the networker is the only serial stage).
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
  CostModel costs = DefaultCosts();
  costs.networker_ns = 100.0;  // a faster NIC path, to expose the dispatcher
  ExperimentParams params;
  params.request_count = kSmallRun;

  SystemConfig stealing = MakeCoopWorkStealing(14, UsToNs(100.0));
  SystemConfig jbsq = MakeConcordNoDispatcherWork(14, UsToNs(100.0));
  const double steal_max = FindMaxLoadUnderSlo(stealing, costs, *spec.distribution,
                                               kPaperSloSlowdown, 500.0, 9500.0, params, 0.04);
  const double jbsq_max = FindMaxLoadUnderSlo(jbsq, costs, *spec.distribution,
                                              kPaperSloSlowdown, 500.0, 9500.0, params, 0.04);
  EXPECT_GT(steal_max, jbsq_max * 1.2);
}

TEST(WorkStealingTest, SchedulerCanStealWork) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  ServerModel model(MakeCoopWorkStealing(2, UsToNs(5.0), /*scheduler_steals_work=*/true),
                    DefaultCosts(), 24);
  const RunResult result = model.Run(*spec.distribution, 6.5, kSmallRun / 2);
  EXPECT_EQ(result.completed, kSmallRun / 2);
  EXPECT_GT(result.dispatcher_stolen, 0u);
}

TEST(WorkStealingTest, DeterministicAcrossRuns) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kTpcc);
  ServerModel a(MakeCoopWorkStealing(4, UsToNs(10.0)), DefaultCosts(), 25);
  ServerModel b(MakeCoopWorkStealing(4, UsToNs(10.0)), DefaultCosts(), 25);
  EXPECT_DOUBLE_EQ(a.Run(*spec.distribution, 150.0, kSmallRun).slowdown.P999Slowdown(),
                   b.Run(*spec.distribution, 150.0, kSmallRun).slowdown.P999Slowdown());
}

TEST(ReplicationTest, SplitsLoadEvenly) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ExperimentParams params;
  params.request_count = 40000;
  const ReplicatedRunResult result = RunReplicatedLoadPoint(
      MakeConcord(14, UsToNs(5.0)), DefaultCosts(), *spec.distribution,
      /*total_offered_krps=*/120.0, /*instances=*/2, /*total_workers=*/14, params);
  EXPECT_EQ(result.instances, 2);
  EXPECT_EQ(result.workers_per_instance, 7);
  EXPECT_NEAR(result.aggregate.achieved_krps, 120.0, 12.0);
  EXPECT_GE(result.aggregate.p999_slowdown, 1.0);
}

TEST(ReplicationTest, OneInstanceMatchesPlainModel) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ExperimentParams params;
  params.request_count = 30000;
  const SystemConfig config = MakeConcord(14, UsToNs(5.0));
  const CostModel costs = DefaultCosts();
  const LoadPoint plain = RunLoadPoint(config, costs, *spec.distribution, 150.0, params);
  const ReplicatedRunResult replicated =
      RunReplicatedLoadPoint(config, costs, *spec.distribution, 150.0, 1, 14, params);
  EXPECT_DOUBLE_EQ(replicated.aggregate.p999_slowdown, plain.p999_slowdown);
}

TEST(ReplicationTest, ReplicationCostsTailAtLowLoad) {
  // Fewer workers per instance = less statistical multiplexing: at the same
  // total load, the replicated setup's tail is no better (usually worse) on
  // a high-dispersion workload.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ExperimentParams params;
  params.request_count = 60000;
  const SystemConfig config = MakeConcord(14, UsToNs(5.0));
  const CostModel costs = DefaultCosts();
  const double load = 160.0;
  const double one = RunReplicatedLoadPoint(config, costs, *spec.distribution, load, 1, 14,
                                            params)
                         .aggregate.p999_slowdown;
  const double seven = RunReplicatedLoadPoint(config, costs, *spec.distribution, load, 7, 14,
                                              params)
                           .aggregate.p999_slowdown;
  EXPECT_GT(seven, one * 0.9);
}

TEST(ReplicationDeathTest, RejectsUnevenSplit) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
  ExperimentParams params;
  params.request_count = 1000;
  EXPECT_DEATH(RunReplicatedLoadPoint(MakeConcord(14, UsToNs(5.0)), DefaultCosts(),
                                      *spec.distribution, 100.0, 3, 14, params),
               "Check failed");
}

TEST(ApiLevelPreemptDisableTest, NonpreemptibleClassNeverPreempted) {
  // Shinjuku-prototype behaviour (§3.1): preemption disabled for entire API
  // calls, modeled as a non-preemptible request class.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  SystemConfig config = MakeShinjuku(8, UsToNs(5.0));
  config.nonpreemptible_classes = {1};  // the 100us "long" class
  ServerModel model(config, DefaultCosts(), 26);
  const RunResult result = model.Run(*spec.distribution, 100.0, kSmallRun);
  // Shorts are under the quantum, longs are exempt: zero preemptions.
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.completed, kSmallRun);
}

TEST(ApiLevelPreemptDisableTest, FineGrainedLockingBeatsApiLevelDisable) {
  // The §3.1 microbenchmark: long-running "GET API calls" that Shinjuku
  // cannot preempt (API-level disable) but Concord can (4-line lock
  // counter). Fine-grained safety sustains several times the load at the
  // same SLO (the paper saw 4x).
  DiscreteMixtureDistribution workload({
      {"short", 0.50, UsToNs(1.0)},
      {"long-get", 0.50, UsToNs(100.0)},
  });
  ExperimentParams params;
  params.request_count = 40000;
  const CostModel costs = DefaultCosts();

  SystemConfig api_disable = MakeShinjuku(8, UsToNs(5.0));
  api_disable.nonpreemptible_classes = {1};
  SystemConfig fine_grained = MakeConcord(8, UsToNs(5.0));
  fine_grained.locks.hold_probability = 0.05;  // brief critical sections
  fine_grained.locks.mean_remaining_ns = UsToNs(0.5);

  const double api_max = FindMaxLoadUnderSlo(api_disable, costs, workload, kPaperSloSlowdown,
                                             5.0, 160.0, params, 0.04);
  const double fine_max = FindMaxLoadUnderSlo(fine_grained, costs, workload, kPaperSloSlowdown,
                                              5.0, 160.0, params, 0.04);
  EXPECT_GT(fine_max, api_max * 1.5);
}

}  // namespace
}  // namespace concord
