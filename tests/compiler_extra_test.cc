// Additional probe-placement tests: nested structures, unroll clamping,
// placement-rule interactions and estimator edge cases.

#include <gtest/gtest.h>

#include "src/compiler/instrumentation_model.h"
#include "src/compiler/ir.h"
#include "src/compiler/probe_placement.h"

namespace concord {
namespace {

IrProgram Program(std::vector<IrNode> body, std::int64_t invocations = 1) {
  IrProgram program;
  program.name = "t";
  program.ipc = 2.0;
  IrFunction fn;
  fn.name = "f";
  fn.invocations = invocations;
  fn.body = std::move(body);
  program.functions.push_back(std::move(fn));
  return program;
}

TEST(ProbePlacementExtraTest, NestedLoopsProbeBothLevels) {
  // outer(100) { straight(300); inner(50){ straight(400) } }
  const IrProgram program = Program({IrNode::Loop(
      100, {IrNode::Straight(300), IrNode::Loop(50, {IrNode::Straight(400)})})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  // Inner back-edges: 49 per outer iteration; outer back-edges: 99; entry: 1.
  EXPECT_EQ(report.probes_executed, 1 + 100 * 49 + 99);
  EXPECT_EQ(report.instructions_executed, 100 * (300 + 50 * 400));
}

TEST(ProbePlacementExtraTest, UnrollFactorIsClamped) {
  PlacementConfig config;
  config.max_unroll_factor = 4;
  // 1-instruction body would want 200x unrolling; the clamp caps it at 4.
  const IrProgram program = Program({IrNode::Loop(4000, {IrNode::Straight(1)})});
  const InstrumentationReport report = AnalyzeProgram(program, config);
  // 4000/4 = 1000 super-iterations: 999 back-edges + entry.
  EXPECT_EQ(report.probes_executed, 1 + 999);
}

TEST(ProbePlacementExtraTest, LoopWithCallIsNotUnrolled) {
  // A call inside the body pins probes, so unrolling is disabled even for a
  // tiny body; every iteration carries a back-edge probe plus a call probe.
  IrNode helper;
  helper.kind = IrNode::Kind::kCall;
  helper.callee_instrumented = true;
  const IrProgram program = Program({IrNode::Loop(1000, {helper, IrNode::Straight(10)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  // Entry + 1000 call probes + 999 back-edge probes.
  EXPECT_EQ(report.probes_executed, 1 + 1000 + 999);
  EXPECT_EQ(report.instructions_saved_by_unrolling, 0);
}

TEST(ProbePlacementExtraTest, ZeroDiscountMeansNoCreditedSavings) {
  PlacementConfig config;
  config.unroll_saving_discount = 0.0;
  const IrProgram program = Program({IrNode::Loop(100000, {IrNode::Straight(5)})});
  const InstrumentationReport report = AnalyzeProgram(program, config);
  EXPECT_EQ(report.instructions_saved_by_unrolling, 0);
  const OverheadEstimate estimate = EstimateOverhead(report, ProbeCosts{}, 2.0);
  EXPECT_GT(estimate.coop_fraction, 0.0);
}

TEST(ProbePlacementExtraTest, UninstrumentedCallInsideLoopDominatesGaps) {
  const IrProgram program = Program({IrNode::Loop(
      1000, {IrNode::Straight(500), IrNode::UninstrumentedCall(20000.0)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  EXPECT_DOUBLE_EQ(report.max_gap_ns, 20000.0);
  EXPECT_NEAR(report.uninstrumented_time_ns, 1000 * 20000.0, 1.0);
  const TimelinessEstimate timeliness = EstimateTimeliness(report);
  // The opaque call is ~99% of the time: the delay distribution is close to
  // U(0, 20us): mean ~10us, stddev ~5.8us.
  EXPECT_NEAR(timeliness.mean_delay_ns, 10000.0, 500.0);
  EXPECT_NEAR(timeliness.stddev_ns, 5773.5, 500.0);
  EXPECT_GT(timeliness.p99_delay_ns, 19000.0);
}

TEST(ProbePlacementExtraTest, MultipleFunctionsAccumulate) {
  IrProgram program;
  program.name = "multi";
  program.ipc = 2.0;
  for (int f = 0; f < 3; ++f) {
    IrFunction fn;
    fn.name = "f" + std::to_string(f);
    fn.invocations = 10;
    fn.body.push_back(IrNode::Straight(1000));
    program.functions.push_back(std::move(fn));
  }
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  EXPECT_EQ(report.probes_executed, 3 * 10);  // entry probes only
  EXPECT_EQ(report.instructions_executed, 3 * 10 * 1000);
}

TEST(ProbePlacementExtraTest, InvocationRepeatCompressionMatchesLiteral) {
  // 1000 invocations analyzed via the capture/scale path must match 4
  // literal invocations scaled by counting arithmetic: compare densities.
  std::vector<IrNode> body = {IrNode::Straight(777), IrNode::UninstrumentedCall(50.0)};
  const IrProgram few = Program(body, 4);
  const IrProgram many = Program(body, 1000);
  const InstrumentationReport report_few = AnalyzeProgram(few, PlacementConfig{});
  const InstrumentationReport report_many = AnalyzeProgram(many, PlacementConfig{});
  EXPECT_EQ(report_many.probes_executed % report_few.probes_executed, 0);
  EXPECT_EQ(report_many.probes_executed / 250, report_few.probes_executed);
  EXPECT_NEAR(report_many.TotalTimeNs() / 250.0, report_few.TotalTimeNs(), 1e-6);
}

TEST(InstrumentationModelExtraTest, P99BelowMaxAndAboveMean) {
  InstrumentationReport report;
  report.gaps[50.0] = 10000;
  report.gaps[5000.0] = 10;
  report.max_gap_ns = 5000.0;
  const TimelinessEstimate t = EstimateTimeliness(report);
  EXPECT_GT(t.p99_delay_ns, t.mean_delay_ns);
  EXPECT_LE(t.p99_delay_ns, t.max_delay_ns);
}

TEST(InstrumentationModelExtraTest, OverheadScalesWithProgramIpc) {
  // A higher-IPC program spends less time per 200-instruction probe window,
  // so the same probes cost relatively more.
  IrProgram slow = Program({IrNode::Loop(100000, {IrNode::Straight(200)})});
  IrProgram fast = slow;
  slow.ipc = 1.0;
  fast.ipc = 2.0;
  const double slow_overhead =
      EstimateOverhead(AnalyzeProgram(slow, PlacementConfig{}), ProbeCosts{}, slow.ipc)
          .coop_fraction;
  const double fast_overhead =
      EstimateOverhead(AnalyzeProgram(fast, PlacementConfig{}), ProbeCosts{}, fast.ipc)
          .coop_fraction;
  EXPECT_NEAR(fast_overhead, slow_overhead * 2.0, slow_overhead * 0.1);
}

}  // namespace
}  // namespace concord
