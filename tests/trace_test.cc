// Unit and integration tests for the scheduling-trace layer (src/trace):
// collector drop accounting (buffer eviction + ring sequence gaps), Chrome
// trace-event export with exact TSC args, the offline analyzer's invariant
// checks on both clean and deliberately corrupted traces, a live
// runtime -> trace -> analyzer round trip, and the MetricsSampler's
// windows-sum-to-total identity.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/event_ring.h"
#include "src/telemetry/json.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/analyzer.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/collector.h"
#include "src/trace/metrics_sampler.h"

namespace concord::trace {
namespace {

TraceRecord MakeSegment(std::uint64_t id, std::uint64_t start, std::uint64_t end,
                        std::int32_t worker, SegmentEnd reason, std::int32_t cls = 0) {
  return TraceRecord{id, start, end, RecordKind::kSegment, worker, cls,
                     static_cast<std::uint32_t>(reason)};
}

// Builds a synthetic TraceCapture with the same sequence discipline the
// collector uses: worker segments on per-worker streams, everything else on
// the dispatcher stream, both dense from 0. Records must be added in time
// order (that is what the producers guarantee).
class CaptureBuilder {
 public:
  CaptureBuilder(int workers, int jbsq_depth, double quantum_us) {
    capture_.enabled = true;
    capture_.tsc_ghz = 1.0;  // 1 GHz: 1000 tsc == 1 us, keeps arithmetic exact
    capture_.worker_count = workers;
    capture_.jbsq_depth = jbsq_depth;
    capture_.quantum_us = quantum_us;
    capture_.ring_dropped_per_worker.assign(static_cast<std::size_t>(workers), 0);
    worker_seq_.assign(static_cast<std::size_t>(workers), 0);
  }

  void Add(const TraceRecord& record) {
    std::uint64_t seq;
    if (record.kind == RecordKind::kSegment && record.worker >= 0) {
      seq = worker_seq_[static_cast<std::size_t>(record.worker)]++;
    } else {
      seq = dispatcher_seq_++;
    }
    capture_.records.push_back(CollectedRecord{record, seq});
  }

  void Arrival(std::uint64_t id, std::uint64_t submit, std::uint64_t adopt,
               std::int32_t cls = 0) {
    Add(TraceRecord{id, submit, adopt, RecordKind::kArrival, kDispatcherTrack, cls, 0});
  }

  // Dispatch records carry the request's absolute deadline in end_tsc
  // (0 = submitted without one) — the field the offline EDF check reads.
  void Dispatch(std::uint64_t id, std::uint64_t tsc, std::int32_t worker, std::uint32_t depth,
                std::int32_t cls = 0, std::uint64_t deadline_tsc = 0) {
    Add(TraceRecord{id, tsc, deadline_tsc, RecordKind::kDispatch, worker, cls, depth});
  }

  void Segment(std::uint64_t id, std::uint64_t start, std::uint64_t end, std::int32_t worker,
               SegmentEnd reason, std::int32_t cls = 0) {
    Add(MakeSegment(id, start, end, worker, reason, cls));
  }

  void PreemptSignal(std::int32_t worker, std::uint64_t tsc) {
    Add(TraceRecord{0, tsc, 0, RecordKind::kPreemptSignal, worker, 0, 0});
  }

  TraceCapture& capture() { return capture_; }

  AnalyzerReport Analyze(AnalyzerOptions options = {}) const {
    return AnalyzeChromeTraceJson(ToChromeTraceJson(capture_), options);
  }

 private:
  TraceCapture capture_;
  std::uint64_t dispatcher_seq_ = 0;
  std::vector<std::uint64_t> worker_seq_;
};

// One complete worker-path request: dispatch -> run -> yield -> re-dispatch
// -> run -> finish, at easily checkable 1 GHz timestamps.
void AddPreemptedWorkerRequest(CaptureBuilder* builder, std::uint64_t id, std::uint64_t base,
                               std::int32_t worker) {
  builder->Arrival(id, base + 100, base + 1100);
  builder->Dispatch(id, base + 2100, worker, 1);
  builder->PreemptSignal(worker, base + 8000);
  builder->Segment(id, base + 3100, base + 8100, worker, SegmentEnd::kPreemptYield);
  builder->Dispatch(id, base + 9100, worker, 1);
  builder->Segment(id, base + 10100, base + 15100, worker, SegmentEnd::kFinished);
}

TEST(TraceCollectorTest, AppendAssignsDenseDispatcherSequences) {
  TraceCollector collector(/*worker_count=*/2, /*buffer_capacity=*/16);
  for (std::uint64_t i = 0; i < 3; ++i) {
    collector.Append(TraceRecord{i, 100 * i, 0, RecordKind::kDispatch, 0, 0, 1});
  }
  const TraceCapture capture = collector.Capture();
  ASSERT_EQ(capture.records.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(capture.records[i].sequence, i);
    EXPECT_EQ(capture.records[i].record.request_id, i);
  }
  EXPECT_EQ(capture.buffer_dropped, 0u);
  EXPECT_EQ(capture.ring_dropped, 0u);
}

TEST(TraceCollectorTest, BufferEvictsOldestAndCountsEveryEviction) {
  TraceCollector collector(/*worker_count=*/1, /*buffer_capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    collector.Append(TraceRecord{i, i, 0, RecordKind::kDispatch, 0, 0, 1});
  }
  const TraceCapture capture = collector.Capture();
  ASSERT_EQ(capture.records.size(), 4u);
  EXPECT_EQ(capture.buffer_dropped, 6u);
  // The newest four survive, sequence numbering intact.
  EXPECT_EQ(capture.records.front().record.request_id, 6u);
  EXPECT_EQ(capture.records.front().sequence, 6u);
  EXPECT_EQ(capture.records.back().sequence, 9u);
}

TEST(TraceCollectorTest, DrainWorkerRingCountsSequenceGapsExactly) {
  TraceCollector collector(/*worker_count=*/2, /*buffer_capacity=*/64);
  telemetry::EventRing<TraceRecord> ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.Push(MakeSegment(i, 10 * i, 10 * i + 5, /*worker=*/1, SegmentEnd::kFinished));
  }
  collector.DrainWorkerRing(1, &ring);
  const TraceCapture capture = collector.Capture();
  // The 4-slot ring kept only the last 4 of 10 pushes; the 6 overwritten
  // records must surface as ring loss, attributed to worker 1.
  ASSERT_EQ(capture.records.size(), 4u);
  EXPECT_EQ(capture.ring_dropped, 6u);
  ASSERT_EQ(capture.ring_dropped_per_worker.size(), 2u);
  EXPECT_EQ(capture.ring_dropped_per_worker[0], 0u);
  EXPECT_EQ(capture.ring_dropped_per_worker[1], 6u);
  EXPECT_EQ(capture.records.front().sequence, 6u);
  EXPECT_EQ(capture.records.front().record.request_id, 6u);
}

TEST(ChromeTraceTest, JsonCarriesSchemaTrackMetadataAndExactTscArgs) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/20.0);
  // A start TSC beyond double's 53-bit mantissa: the args must keep it exact
  // even though the display `ts` field is a lossy double.
  const std::uint64_t big = (std::uint64_t{1} << 60) + 7;
  builder.capture().base_tsc = big - 1000;
  builder.Arrival(42, big - 900, big - 500, /*cls=*/3);
  builder.Dispatch(42, big - 400, 0, 1, /*cls=*/3);
  builder.Segment(42, big, big + 5000, 0, SegmentEnd::kFinished, /*cls=*/3);

  const std::string json = ToChromeTraceJson(builder.capture());
  telemetry::JsonValue root;
  ASSERT_TRUE(telemetry::JsonValue::Parse(json, &root)) << json;
  const telemetry::JsonValue* other = root.Get("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Get("schema"), nullptr);
  EXPECT_EQ(other->Get("schema")->AsString(), kTraceSchema);
  EXPECT_EQ(other->GetInt("worker_count"), 1);
  EXPECT_EQ(other->GetInt("jbsq_depth"), 2);

  const telemetry::JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_thread_metadata = false;
  bool saw_exact_segment = false;
  for (const telemetry::JsonValue& event : events->AsArray()) {
    const telemetry::JsonValue* ph = event.Get("ph");
    if (ph == nullptr) {
      continue;
    }
    if (ph->AsString() == "M") {
      saw_thread_metadata = true;
    }
    if (ph->AsString() == "X") {
      const telemetry::JsonValue* args = event.Get("args");
      ASSERT_NE(args, nullptr);
      if (args->GetUint("start_tsc") == big) {
        EXPECT_EQ(args->GetUint("end_tsc"), big + 5000);
        EXPECT_EQ(args->GetUint("id"), 42u);
        EXPECT_EQ(args->GetInt("class"), 3);
        saw_exact_segment = true;
      }
    }
  }
  EXPECT_TRUE(saw_thread_metadata);
  EXPECT_TRUE(saw_exact_segment);
}

TEST(AnalyzerTest, RoundTripRecomputesExactLatencyBreakdown) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  AddPreemptedWorkerRequest(&builder, /*id=*/1, /*base=*/0, /*worker=*/0);
  // A dispatcher-adopted request, pinned to completion (§3.3).
  builder.Arrival(2, 20000, 21000);
  builder.Dispatch(2, 22000, kDispatcherTrack, 0);
  builder.Segment(2, 22000, 27000, kDispatcherTrack, SegmentEnd::kDispatcherQuantum);
  builder.Segment(2, 28000, 30000, kDispatcherTrack, SegmentEnd::kFinished);

  const AnalyzerReport report = builder.Analyze();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_EQ(report.requests_total, 2u);
  EXPECT_EQ(report.requests_complete, 2u);
  EXPECT_EQ(report.requests_truncated, 0u);
  EXPECT_EQ(report.preempt_signals, 1u);
  EXPECT_EQ(report.dispatcher_segments, 2u);
  ASSERT_EQ(report.segments_per_worker.size(), 1u);
  EXPECT_EQ(report.segments_per_worker[0], 2u);
  EXPECT_EQ(report.observed_sequence_gaps, 0u);
  EXPECT_EQ(report.unexplained_drops, 0u);

  ASSERT_EQ(report.breakdowns.size(), 2u);
  for (const RequestBreakdown& breakdown : report.breakdowns) {
    // The four components partition [arrival, finish] by construction.
    EXPECT_DOUBLE_EQ(breakdown.first_wait_us + breakdown.inbox_wait_us +
                         breakdown.requeue_wait_us + breakdown.service_us,
                     breakdown.latency_us);
    if (breakdown.id == 1) {
      EXPECT_FALSE(breakdown.on_dispatcher);
      EXPECT_EQ(breakdown.segments, 2);
      EXPECT_EQ(breakdown.preemptions, 1);
      // 1 GHz capture: 1000 tsc per microsecond, all values exact.
      EXPECT_DOUBLE_EQ(breakdown.first_wait_us, 2.0);   // 100 -> 2100
      EXPECT_DOUBLE_EQ(breakdown.inbox_wait_us, 2.0);   // 2100->3100 + 9100->10100
      EXPECT_DOUBLE_EQ(breakdown.requeue_wait_us, 1.0);  // 8100 -> 9100
      EXPECT_DOUBLE_EQ(breakdown.service_us, 10.0);     // two 5 us segments
      EXPECT_DOUBLE_EQ(breakdown.latency_us, 15.0);     // 100 -> 15100
    } else {
      EXPECT_TRUE(breakdown.on_dispatcher);
      EXPECT_EQ(breakdown.segments, 2);
      EXPECT_DOUBLE_EQ(breakdown.latency_us, 10.0);  // 20000 -> 30000
    }
  }
}

TEST(AnalyzerTest, FlagsDispatchTaggedBeyondJbsqDepth) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 1100);
  builder.Dispatch(1, 2100, 0, /*depth=*/3);  // k = 2: the dispatcher never pushes a 3rd
  builder.Segment(1, 3100, 8100, 0, SegmentEnd::kFinished);
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("JBSQ occupancy"), std::string::npos);
}

TEST(AnalyzerTest, FlagsReplayedOccupancyBeyondK) {
  // Three requests pushed to worker 0 before any segment ends: the
  // independent replay must catch occupancy 3 > k even though every
  // dispatch lies with an in-bound depth tag.
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    builder.Arrival(id, 100 * id, 100 * id + 50);
    builder.Dispatch(id, 1000 + 10 * id, 0, /*depth=*/static_cast<std::uint32_t>(id % 2 + 1));
  }
  for (std::uint64_t id = 1; id <= 3; ++id) {
    builder.Segment(id, 2000 + 1000 * id, 2800 + 1000 * id, 0, SegmentEnd::kFinished);
  }
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const std::string& violation : report.violations) {
    found = found || violation.find("replayed JBSQ occupancy") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, FlagsDispatcherPinningViolation) {
  // A dispatcher-adopted request must stay on the dispatcher to completion;
  // a later worker segment is a §3.3 violation.
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 1100);
  builder.Dispatch(1, 2000, kDispatcherTrack, 0);
  builder.Segment(1, 2000, 7000, kDispatcherTrack, SegmentEnd::kDispatcherQuantum);
  builder.Segment(1, 8000, 9000, 0, SegmentEnd::kFinished);
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("ran on worker"), std::string::npos);
}

TEST(AnalyzerTest, FlagsNonMonotoneArrivalTimestamps) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 2500);  // adopted *after* the dispatch below
  builder.Dispatch(1, 2100, 0, 1);
  builder.Segment(1, 3100, 8100, 0, SegmentEnd::kFinished);
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  // Flagged twice: the per-request arrival/adopt/dispatch ordering check,
  // and the stream check (the adopt stamp runs backwards against the
  // dispatch stamp appended after it).
  bool found_monotone = false;
  for (const std::string& violation : report.violations) {
    found_monotone = found_monotone || violation.find("not monotone") != std::string::npos;
  }
  EXPECT_TRUE(found_monotone) << report.violations.front();
}

// Clean EDF trace: two requests pending together, dispatched
// earliest-deadline-first. The check must run (dispatch count reported) and
// find nothing.
TEST(AnalyzerTest, EdfTraceInDeadlineOrderPassesAndCountsChecks) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/1, /*quantum_us=*/5.0);
  builder.capture().policy = "edf";
  builder.Arrival(1, 100, 1000);  // deadline 50000
  builder.Arrival(2, 200, 1000);  // deadline 20000: earlier, must go first
  builder.Dispatch(2, 2000, 0, 1, 0, /*deadline_tsc=*/20000);
  builder.Segment(2, 2100, 3000, 0, SegmentEnd::kFinished);
  builder.Dispatch(1, 3500, 0, 1, 0, /*deadline_tsc=*/50000);
  builder.Segment(1, 3600, 4500, 0, SegmentEnd::kFinished);
  const AnalyzerReport report = builder.Analyze();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_EQ(report.policy, "edf");
  EXPECT_EQ(report.edf_dispatches_checked, 2u);
}

// The same two requests dispatched in the wrong order — the late deadline
// leaves while the early one waits — must fire the EDF ordering check. This
// is the synthetic-violation proof that the `concord_trace --check` rule has
// teeth.
TEST(AnalyzerTest, FlagsEdfDispatchPassingAnEarlierPendingDeadline) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/1, /*quantum_us=*/5.0);
  builder.capture().policy = "edf";
  builder.Arrival(1, 100, 1000);  // deadline 50000
  builder.Arrival(2, 200, 1000);  // deadline 20000, left waiting
  builder.Dispatch(1, 2000, 0, 1, 0, /*deadline_tsc=*/50000);
  builder.Segment(1, 2100, 3000, 0, SegmentEnd::kFinished);
  builder.Dispatch(2, 3500, 0, 1, 0, /*deadline_tsc=*/20000);
  builder.Segment(2, 3600, 4500, 0, SegmentEnd::kFinished);
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  bool found_edf = false;
  for (const std::string& violation : report.violations) {
    found_edf = found_edf || violation.find("EDF ordering") != std::string::npos;
  }
  EXPECT_TRUE(found_edf) << report.violations.front();
}

// The identical out-of-order dispatch stream under any other policy is
// legal: the check only arms when the capture says the runtime ran EDF, and
// deadline-free requests never enter the pending set.
TEST(AnalyzerTest, EdfCheckStaysDisarmedForOtherPoliciesAndBareRequests) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/1, /*quantum_us=*/5.0);
  builder.capture().policy = "concord-jbsq";
  builder.Arrival(1, 100, 1000);
  builder.Arrival(2, 200, 1000);
  builder.Dispatch(1, 2000, 0, 1, 0, /*deadline_tsc=*/50000);
  builder.Segment(1, 2100, 3000, 0, SegmentEnd::kFinished);
  builder.Dispatch(2, 3500, 0, 1, 0, /*deadline_tsc=*/20000);
  builder.Segment(2, 3600, 4500, 0, SegmentEnd::kFinished);
  const AnalyzerReport no_edf_policy = builder.Analyze();
  EXPECT_TRUE(no_edf_policy.ok());
  EXPECT_EQ(no_edf_policy.policy, "concord-jbsq");
  EXPECT_EQ(no_edf_policy.edf_dispatches_checked, 0u);

  // EDF policy, but no request carries a deadline: nothing to check, and a
  // zero count distinguishes "ran and found order" from "never ran".
  CaptureBuilder bare(/*workers=*/1, /*jbsq_depth=*/1, /*quantum_us=*/5.0);
  bare.capture().policy = "edf";
  bare.Arrival(1, 100, 1000);
  bare.Dispatch(1, 2000, 0, 1);
  bare.Segment(1, 2100, 3000, 0, SegmentEnd::kFinished);
  const AnalyzerReport no_deadlines = bare.Analyze();
  EXPECT_TRUE(no_deadlines.ok());
  EXPECT_EQ(no_deadlines.edf_dispatches_checked, 0u);
}

TEST(AnalyzerTest, UnexplainedSequenceGapFailsAZeroDropTrace) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 1100);
  builder.Dispatch(1, 2100, 0, 1);
  builder.Segment(1, 3100, 8100, 0, SegmentEnd::kFinished);
  builder.Arrival(2, 9000, 9100);
  builder.Dispatch(2, 9200, 0, 1);
  builder.Segment(2, 9300, 9800, 0, SegmentEnd::kFinished);
  // Corrupt worker 0's second segment sequence (0,1 -> 0,2): the file now
  // shows a hole it never declared.
  for (CollectedRecord& record : builder.capture().records) {
    if (record.record.kind == RecordKind::kSegment && record.record.request_id == 2) {
      record.sequence = 2;
    }
  }
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.observed_sequence_gaps, 1u);
  EXPECT_EQ(report.unexplained_drops, 1u);
}

TEST(AnalyzerTest, DeclaredDropsExplainTruncatedTimelines) {
  // Same hole, but the file declares the loss: the missing record makes the
  // request truncated, never a violation.
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 1100);
  builder.Dispatch(1, 2100, 0, 1);
  builder.Segment(1, 3100, 8100, 0, SegmentEnd::kPreemptYield);
  // The re-dispatch and final segment were lost in the ring.
  builder.capture().ring_dropped = 2;
  builder.capture().ring_dropped_per_worker[0] = 2;
  const AnalyzerReport report = builder.Analyze();
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? report.error
                                                         : report.violations.front());
  EXPECT_EQ(report.requests_total, 1u);
  EXPECT_EQ(report.requests_complete, 0u);
  EXPECT_EQ(report.requests_truncated, 1u);
  EXPECT_EQ(report.unexplained_drops, 0u);
}

TEST(AnalyzerTest, TruncationUnderZeroDeclaredDropsIsUnexplained) {
  CaptureBuilder builder(/*workers=*/1, /*jbsq_depth=*/2, /*quantum_us=*/5.0);
  builder.Arrival(1, 100, 1100);
  builder.Dispatch(1, 2100, 0, 1);
  builder.Segment(1, 3100, 8100, 0, SegmentEnd::kPreemptYield);  // never finishes
  const AnalyzerReport report = builder.Analyze();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.requests_truncated, 1u);
  EXPECT_GE(report.unexplained_drops, 1u);
}

TEST(AnalyzerTest, RejectsNonConcordJson) {
  const AnalyzerReport report = AnalyzeChromeTraceJson("{\"traceEvents\":[]}", {});
  EXPECT_FALSE(report.error.empty());
  EXPECT_FALSE(report.ok());
}

TEST(LiveRuntimeTraceTest, TracingOffByDefaultYieldsDisabledCapture) {
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  ASSERT_TRUE(runtime.Submit(1, 0, nullptr));
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_FALSE(runtime.trace_enabled());
  const TraceCapture capture = runtime.GetTrace();
  EXPECT_FALSE(capture.enabled);
  EXPECT_TRUE(capture.records.empty());
}

TEST(LiveRuntimeTraceTest, CaptureRoundTripsThroughFileAndAnalyzesClean) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  constexpr int kRequests = 64;
  Runtime::Options options;
  options.worker_count = 2;
  options.jbsq_depth = 2;
  options.quantum_us = 50.0;
  options.trace_buffer_capacity = std::size_t{1} << 16;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(200.0); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  EXPECT_TRUE(runtime.trace_enabled());
  // Driver loop in a test, not handler code. concord-lint: allow-no-probe
  for (int i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(static_cast<std::uint64_t>(i), 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  const TraceCapture capture = runtime.GetTrace();
  ASSERT_TRUE(capture.enabled);
  EXPECT_EQ(capture.worker_count, 2);
  EXPECT_GT(capture.records.size(), static_cast<std::size_t>(kRequests));

  const std::string path = ::testing::TempDir() + "concord_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(capture, path));

  AnalyzerOptions analyzer_options;
  analyzer_options.grace_us = 1e6;  // CI hosts deschedule whole worker threads
  const AnalyzerReport report = AnalyzeChromeTraceFile(path, analyzer_options);
  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "unexplained drops"
                                                         : report.violations.front());
  EXPECT_EQ(report.requests_total, static_cast<std::size_t>(kRequests));
  EXPECT_EQ(report.requests_complete, static_cast<std::size_t>(kRequests));
  EXPECT_EQ(report.unexplained_drops, 0u);
  // Every request's recomputed components must partition its latency.
  for (const RequestBreakdown& breakdown : report.breakdowns) {
    EXPECT_NEAR(breakdown.first_wait_us + breakdown.inbox_wait_us + breakdown.requeue_wait_us +
                    breakdown.service_us,
                breakdown.latency_us, 1e-6);
    EXPECT_GT(breakdown.service_us, 0.0);
  }
}

TEST(MetricsSamplerTest, WindowCompletionsSumExactlyToRunTotal) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  constexpr int kRequests = 2000;
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(5.0); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  MetricsSampler::Options sampler_options;
  sampler_options.window_ms = 2.0;
  MetricsSampler sampler(sampler_options, [&runtime] { return runtime.GetTelemetry(); });
  sampler.Start();
  // Driver loop in a test, not handler code. concord-lint: allow-no-probe
  for (int i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(static_cast<std::uint64_t>(i), i % 4, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  const std::uint64_t completed = runtime.GetTelemetry().RequestsCompleted();
  sampler.Stop();
  runtime.Shutdown();

  ASSERT_EQ(completed, static_cast<std::uint64_t>(kRequests));
  const std::vector<MetricsWindow> windows = sampler.Windows();
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(sampler.dropped_windows(), 0u);
  std::uint64_t summed = 0;
  std::uint64_t slowdown_samples = 0;
  for (const MetricsWindow& window : windows) {
    summed += window.completed;
    slowdown_samples += window.slowdown_samples;
    if (window.slowdown_samples > 0) {
      EXPECT_GE(window.slowdown_p50, 1.0);  // slowdown is clamped >= 1
      EXPECT_GE(window.slowdown_p999, window.slowdown_p50);
    }
  }
  // The identity the CI trace job asserts to 1%: counter diffs with a final
  // partial-window flush make it exact here.
  EXPECT_EQ(summed, completed);
  // Scored lifecycles are bounded by completions; anything evicted before
  // scoring is counted, not silently skipped.
  EXPECT_LE(slowdown_samples + sampler.missed_lifecycles(), completed);
}

TEST(MetricsSamplerTest, JsonSeriesAndPrometheusExpositionAreWellFormed) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(2.0); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  MetricsSampler::Options sampler_options;
  sampler_options.window_ms = 500.0;  // longer than the run: Stop() must flush
  sampler_options.exposition_path = ::testing::TempDir() + "concord_metrics_test.prom";
  MetricsSampler sampler(sampler_options, [&runtime] { return runtime.GetTelemetry(); });
  sampler.Start();
  // Driver loop in a test, not handler code. concord-lint: allow-no-probe
  for (int i = 0; i < 100; ++i) {
    while (!runtime.Submit(static_cast<std::uint64_t>(i), 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  sampler.Stop();
  runtime.Shutdown();

  // Stop() flushed the final partial window even though no tick elapsed.
  ASSERT_FALSE(sampler.Windows().empty());

  telemetry::JsonValue root;
  ASSERT_TRUE(telemetry::JsonValue::Parse(sampler.ToJsonSeries(), &root));
  ASSERT_NE(root.Get("schema"), nullptr);
  EXPECT_EQ(root.Get("schema")->AsString(), kMetricsSchema);
  const telemetry::JsonValue* windows = root.Get("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_TRUE(windows->is_array());
  EXPECT_EQ(windows->AsArray().size(), sampler.Windows().size());

  const std::string text = sampler.ToPrometheusText();
  EXPECT_NE(text.find("concord_requests_completed_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  std::ifstream exposition(sampler_options.exposition_path);
  ASSERT_TRUE(exposition.good()) << "exposition file not written";
  std::ostringstream contents;
  contents << exposition.rdbuf();
  EXPECT_NE(contents.str().find("concord_requests_completed_total"), std::string::npos);
}

}  // namespace
}  // namespace concord::trace
