// Policy conformance suite: the scheduler-level invariants every
// SchedulingPolicy must satisfy, parameterized over all six policies and
// 1/2/4 shards (ctest label `policy`; docs/policies.md lists the contract).
// Runs a fixed bimodal workload plus a seeded randomized workload family end
// to end through ShardedRuntime and checks, per shard:
//
//   - completion conservation: every accepted request completes exactly once
//     (stats, telemetry and lifecycle counts all agree) — also the
//     no-starvation bound, since WaitIdle only returns once nothing waits;
//   - queue-depth bound: no worker's occupancy ever exceeded the policy's
//     effective depth (JBSQ k for the Concord variants, 1 for the
//     single-queue policies);
//   - dispatcher pinning: a request that starts on the dispatcher finishes
//     there (§3.3);
//   - preemption contract: the run-to-completion policies (fcfs, edf,
//     approx-srpt) never signal a preemption;
//   - deadline accounting: the dispatch-time slack histogram's bucket sum
//     equals the number of deadline-carrying dispatches, and the offline
//     analyzer's EDF ordering check covers every one of them;
//   - trace consistency: each shard's scheduling trace passes the offline
//     analyzer's checks independently;
//   - allocation-free steady state for every policy on a single shard (the
//     PR 4 guarantee must survive the policy layer, the ordered central
//     queue, the EWMA estimator and the adaptive-quantum controller).
//
// The randomized case draws its workload shape (request count, class mix,
// service times, deadline coverage) from a seeded PRNG: set
// CONCORD_TEST_SEED=<n> to reproduce a failure — the seed is printed in the
// failure trace.
//
// Like runtime_test.cc, these verify behaviour, not timing, and run on any
// host CPU count (TSan runs the whole suite).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/alloc_hooks.h"
#include "src/runtime/instrument.h"
#include "src/runtime/policy.h"
#include "src/runtime/runtime.h"
#include "src/runtime/sharded_runtime.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/analyzer.h"
#include "src/trace/chrome_trace.h"

// Counting allocator (common/alloc_hooks.h): lets the ConcordJbsq case prove
// the zero-allocation steady state under the policy layer. Thread-local
// increments only; no behavioral change to the code under test.
void* operator new(std::size_t size) {
  concord::NoteAllocOp();
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept {
  concord::NoteAllocOp();
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept { ::operator delete(ptr); }
void operator delete[](void* ptr) noexcept { ::operator delete(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { ::operator delete(ptr); }

namespace concord {
namespace {

struct ConformanceParam {
  PolicyKind policy;
  int shards;
};

std::string ParamName(const testing::TestParamInfo<ConformanceParam>& info) {
  std::string name = PolicyKindName(info.param.policy);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_x" + std::to_string(info.param.shards);
}

// The Concord variants keep the configured JBSQ depth; every other policy is
// forced to depth-1 workers by its queue discipline.
bool PolicyKeepsConfiguredDepth(PolicyKind policy) {
  return policy == PolicyKind::kConcordJbsq || policy == PolicyKind::kConcordJbsqAdaptive;
}

// Run-to-completion policies: once a request starts it must never be
// preempted, so the runtime may not even request one.
bool PolicyNeverPreempts(PolicyKind policy) {
  return policy == PolicyKind::kFcfsNonPreemptive || policy == PolicyKind::kEdfNonPreemptive ||
         policy == PolicyKind::kApproxSrpt;
}

// Seed for the randomized workload family: CONCORD_TEST_SEED=<n> overrides
// (any strtoull base-0 literal), otherwise a fixed default keeps CI
// deterministic. Failures print the seed via SCOPED_TRACE.
std::uint64_t TestSeed() {
  if (const char* env = std::getenv("CONCORD_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 20260809;
}

class PolicyConformanceTest : public testing::TestWithParam<ConformanceParam> {
 protected:
  ShardedRuntime::Options MakeOptions() const {
    ShardedRuntime::Options options;
    options.shard.worker_count = 2;
    options.shard.quantum_us = 50.0;  // generous: hosts here are slow and shared
    options.shard.jbsq_depth = 2;
    options.shard.policy = GetParam().policy;
    options.shard.work_conserving_dispatcher = false;
    options.shard_count = GetParam().shards;
    return options;
  }
};

// The core end-to-end run shared by the invariant checks below: a bimodal
// mix (short spins plus occasional long ones, class-tagged) through every
// policy and shard count, traced, then audited from stats, telemetry and
// the per-shard scheduling traces.
TEST_P(PolicyConformanceTest, BimodalWorkloadSatisfiesSchedulerInvariants) {
  constexpr std::uint64_t kRequests = 400;
  ShardedRuntime::Options options = MakeOptions();
  options.shard.trace_buffer_capacity = 1 << 16;
  std::atomic<std::uint64_t> handled{0};
  std::mutex complete_mu;  // on_complete runs on every shard's dispatcher
  std::uint64_t completions = 0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 20.0 : 0.5);
    handled.fetch_add(1);
  };
  callbacks.on_complete = [&](const RequestView&, std::uint64_t) {
    std::lock_guard<std::mutex> lock(complete_mu);
    ++completions;
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const int request_class = (i % 10 == 9) ? 1 : 0;  // 10% long
    while (!runtime.Submit(i, request_class, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  // Completion conservation, from every vantage point that counts requests.
  EXPECT_EQ(handled.load(), kRequests);
  {
    std::lock_guard<std::mutex> lock(complete_mu);
    EXPECT_EQ(completions, kRequests);
  }
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(runtime.GetTelemetry().RequestsCompleted(), kRequests);
  }

  for (int s = 0; s < runtime.shard_count(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const int depth = runtime.shard(s).effective_jbsq_depth();
    if (PolicyKeepsConfiguredDepth(GetParam().policy)) {
      EXPECT_EQ(depth, options.shard.jbsq_depth);
    } else {
      EXPECT_EQ(depth, 1) << "single-queue policies must run depth-1 workers";
    }
    if constexpr (telemetry::kEnabled) {
      const telemetry::TelemetrySnapshot shard_telemetry = runtime.GetShardTelemetry(s);
      for (const telemetry::WorkerSnapshot& worker : shard_telemetry.workers) {
        // The queue-depth bound: occupancy high-water per worker.
        EXPECT_LE(worker.max_inflight, static_cast<std::uint64_t>(depth));
      }
      if (PolicyNeverPreempts(GetParam().policy)) {
        EXPECT_EQ(shard_telemetry.PreemptionsRequested(), 0u)
            << "run-to-completion policy sent a preemption signal";
        EXPECT_EQ(shard_telemetry.PreemptionsHonored(), 0u);
      }
      // Dispatcher pinning: a lifecycle completed on the dispatcher must
      // have started there, and vice versa (§3.3).
      for (const telemetry::RequestLifecycle& lifecycle : shard_telemetry.lifecycles) {
        EXPECT_EQ(lifecycle.completion_worker == telemetry::kDispatcherWorkerId,
                  lifecycle.first_worker == telemetry::kDispatcherWorkerId)
            << "request " << lifecycle.id << " migrated across the dispatcher boundary";
      }
      // Each shard's trace must pass the offline analyzer independently
      // (JBSQ occupancy recheck, segment/lifecycle consistency, drop
      // accounting) — the same gate `concord_trace --check` applies.
      const trace::TraceCapture capture = runtime.GetShardTrace(s);
      ASSERT_TRUE(capture.enabled);
      EXPECT_EQ(capture.jbsq_depth, depth);
      trace::AnalyzerOptions analyzer_options;
      const trace::AnalyzerReport report =
          trace::AnalyzeChromeTraceJson(trace::ToChromeTraceJson(capture), analyzer_options);
      EXPECT_TRUE(report.ok()) << (report.error.empty()
                                       ? (report.violations.empty()
                                              ? "unexplained trace drops"
                                              : report.violations.front())
                                       : report.error);
    }
  }

  if (PolicyNeverPreempts(GetParam().policy)) {
    EXPECT_EQ(stats.preemptions, 0u);
  }
}

// The headline randomized conformance case: the workload's shape — request
// count, long-class fraction, both service times and what fraction of
// requests carry deadlines — is drawn from the seeded PRNG, so every CI run
// checks the same invariants the fixed bimodal case pins but across a family
// of mixes (including deadline-free and all-deadline runs). Reproduce any
// failure with CONCORD_TEST_SEED=<printed seed>.
TEST_P(PolicyConformanceTest, RandomizedWorkloadSatisfiesSchedulerInvariants) {
  const std::uint64_t seed = TestSeed();
  SCOPED_TRACE("reproduce with CONCORD_TEST_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> count_dist(200, 500);
  std::uniform_real_distribution<double> long_fraction_dist(0.05, 0.25);
  std::uniform_real_distribution<double> short_us_dist(0.2, 1.0);
  std::uniform_real_distribution<double> long_us_dist(5.0, 20.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const int request_count = count_dist(rng);
  const double long_fraction = long_fraction_dist(rng);
  const double short_us = short_us_dist(rng);
  const double long_us = long_us_dist(rng);
  // Drawn uniformly, so across seeds this sweeps from deadline-free runs
  // (EDF degenerates to FCFS) to all-deadline runs (slack accounting covers
  // every request).
  const double deadline_probability = unit(rng);

  ShardedRuntime::Options options = MakeOptions();
  options.shard.trace_buffer_capacity = 1 << 16;
  std::atomic<std::uint64_t> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? long_us : short_us);
    handled.fetch_add(1);
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::uint64_t with_deadline = 0;
  for (int i = 0; i < request_count; ++i) {
    const int request_class = unit(rng) < long_fraction ? 1 : 0;
    const double service_us = request_class == 1 ? long_us : short_us;
    if (unit(rng) < deadline_probability) {
      ++with_deadline;
      while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr,
                             service_us * 10.0)) {
        std::this_thread::yield();
      }
    } else {
      while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr)) {
        std::this_thread::yield();
      }
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  // Conservation, which doubles as the no-starvation bound: WaitIdle
  // returned, and every accepted request retired exactly once.
  EXPECT_EQ(handled.load(), static_cast<std::uint64_t>(request_count));
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(request_count));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(request_count));
  if (PolicyNeverPreempts(GetParam().policy)) {
    EXPECT_EQ(stats.preemptions, 0u);
  }

  if constexpr (telemetry::kEnabled) {
    const telemetry::TelemetrySnapshot merged = runtime.GetTelemetry();
    EXPECT_EQ(merged.RequestsCompleted(), static_cast<std::uint64_t>(request_count));
    // Slack accounting identity: each deadline-carrying dispatch bumps
    // exactly one bucket. With the 50us quantum no service here can be
    // preempted, so nothing is ever re-dispatched and the sum is exact.
    const std::uint64_t slack_sum =
        std::accumulate(merged.dispatcher.slack_histogram.begin(),
                        merged.dispatcher.slack_histogram.end(), std::uint64_t{0});
    if (stats.preemptions == 0) {
      EXPECT_EQ(slack_sum, with_deadline);
    } else {
      EXPECT_GE(slack_sum, with_deadline) << "re-dispatches may only add buckets, never drop them";
    }

    std::uint64_t edf_checked = 0;
    for (int s = 0; s < runtime.shard_count(); ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      const trace::TraceCapture capture = runtime.GetShardTrace(s);
      ASSERT_TRUE(capture.enabled);
      trace::AnalyzerOptions analyzer_options;
      const trace::AnalyzerReport report =
          trace::AnalyzeChromeTraceJson(trace::ToChromeTraceJson(capture), analyzer_options);
      EXPECT_TRUE(report.ok()) << (report.error.empty()
                                       ? (report.violations.empty()
                                              ? "unexplained trace drops"
                                              : report.violations.front())
                                       : report.error);
      edf_checked += report.edf_dispatches_checked;
    }
    if (GetParam().policy == PolicyKind::kEdfNonPreemptive) {
      // The analyzer's deadline-ordering-at-dispatch check must have covered
      // every deadline-carrying dispatch, not silently skipped the trace.
      EXPECT_EQ(edf_checked, with_deadline);
    } else {
      EXPECT_EQ(edf_checked, 0u) << "EDF ordering check must only arm for the edf policy";
    }
  }
}

TEST_P(PolicyConformanceTest, WorkConservingStealRespectsPolicy) {
  // With the work-conserving dispatcher enabled, every policy must still
  // conserve completions; for the single-queue policies the policy layer
  // forces the steal off, which shows up as zero dispatcher completions.
  ShardedRuntime::Options options = MakeOptions();
  options.shard.work_conserving_dispatcher = true;
  std::atomic<std::uint64_t> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1.0);
    handled.fetch_add(1);
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  constexpr std::uint64_t kRequests = 300;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), kRequests);
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.completed, kRequests);
  if (!PolicyKeepsConfiguredDepth(GetParam().policy)) {
    EXPECT_EQ(stats.dispatcher_started, 0u)
        << "single-queue policies must not run requests on the dispatcher";
  }
  EXPECT_EQ(stats.dispatcher_completed, stats.dispatcher_started);
}

TEST_P(PolicyConformanceTest, SubmitRacingShardedShutdownConservesRequests) {
  // The teardown handshake must hold through the sharded Submit() spill
  // path too: producers race Shutdown(), and every accepted request is
  // drained on whichever shard admitted it.
  ShardedRuntime::Options options = MakeOptions();
  std::atomic<bool> stop_producers{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&runtime, &stop_producers, &accepted, t] {
      std::uint64_t id = static_cast<std::uint64_t>(t) << 32;
      while (!stop_producers.load(std::memory_order_relaxed)) {
        if (runtime.Submit(id++, 0, nullptr)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (accepted.load(std::memory_order_relaxed) < 300) {
    std::this_thread::yield();
  }
  runtime.Shutdown();
  stop_producers.store(true, std::memory_order_relaxed);
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_FALSE(runtime.Submit(1, 0, nullptr));
  const Runtime::Stats stats = runtime.GetStats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.completed, accepted.load()) << "accepted requests stranded at shutdown";
  EXPECT_EQ(handled.load(), accepted.load());
}

// Which global worker id this thread's setup_worker saw (-1 on the
// dispatcher and on test threads). Fibers swap stacks, not OS threads, so
// thread_local identifies the worker a handler is running on.
thread_local int g_spill_worker = -1;

// The 2-shard spill-over path, forced deterministically: shard 0's only
// worker parks on a gate while a tiny ingress_capacity caps shard 0 at
// kCapacity in-flight requests, so once its slab is exhausted every
// round-robin placement onto shard 0 must take SubmitMulti's probe loop to
// shard 1. The backpressure/accepting handshake this leans on is the same
// Sync-parameterized ingress protocol the checked-atomics model checker
// explores exhaustively (docs/modelcheck.md); this case pins the live
// sharded composition of it — spill-over must conserve every accepted
// request, and CI's TSan run covers the data-race side.
TEST(PolicySpillOverTest, TwoShardSpillOverConservesRequests) {
  constexpr std::uint64_t kRequests = 200;
  constexpr std::size_t kCapacity = 4;
  ShardedRuntime::Options options;
  options.shard.worker_count = 1;
  options.shard.jbsq_depth = 2;
  options.shard.quantum_us = 50.0;
  options.shard.policy = PolicyKind::kConcordJbsq;
  // The dispatcher must never run the gated handler, or shard 0's drain
  // loop would park with it.
  options.shard.work_conserving_dispatcher = false;
  options.shard.ingress_capacity = kCapacity;
  options.shard_count = 2;
  options.placement = ShardPlacement::kRoundRobin;

  std::atomic<bool> gate_open{false};
  std::atomic<std::uint64_t> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.setup_worker = [](int worker) { g_spill_worker = worker; };
  callbacks.handle_request = [&](const RequestView&) {
    // Global worker 0 is shard 0's worker; it parks until every request has
    // been accepted somewhere. A plain spin (no probes) cannot be preempted,
    // so the park pins shard 0's capacity for the whole submission loop.
    if (g_spill_worker == 0) {
      while (!gate_open.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    handled.fetch_add(1);
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  // Every request was accepted while shard 0 could hold at most kCapacity of
  // them, so the spill path carried the rest. Only now may shard 0 drain.
  gate_open.store(true, std::memory_order_release);
  runtime.WaitIdle();
  runtime.Shutdown();

  EXPECT_EQ(handled.load(), kRequests);
  const Runtime::Stats total = runtime.GetStats();
  EXPECT_EQ(total.submitted, kRequests);
  EXPECT_EQ(total.completed, kRequests) << "spill-over leaked or duplicated a request";
  const Runtime::Stats shard0 = runtime.shard(0).GetStats();
  const Runtime::Stats shard1 = runtime.shard(1).GetStats();
  EXPECT_EQ(shard0.submitted + shard1.submitted, kRequests);
  EXPECT_EQ(shard0.completed, shard0.submitted);
  EXPECT_EQ(shard1.completed, shard1.submitted);
  // Proof the spill actually happened: round-robin alone would have placed
  // ~half the load on shard 0, but its slab could never hold more than
  // kCapacity un-retired requests.
  EXPECT_LE(shard0.submitted, kCapacity);
  EXPECT_GE(shard1.submitted, kRequests - kCapacity);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndShardCounts, PolicyConformanceTest,
    testing::ValuesIn(std::vector<ConformanceParam>{
        {PolicyKind::kConcordJbsq, 1},
        {PolicyKind::kConcordJbsq, 2},
        {PolicyKind::kConcordJbsq, 4},
        {PolicyKind::kSingleQueuePreemptive, 1},
        {PolicyKind::kSingleQueuePreemptive, 2},
        {PolicyKind::kSingleQueuePreemptive, 4},
        {PolicyKind::kFcfsNonPreemptive, 1},
        {PolicyKind::kFcfsNonPreemptive, 2},
        {PolicyKind::kFcfsNonPreemptive, 4},
        {PolicyKind::kEdfNonPreemptive, 1},
        {PolicyKind::kEdfNonPreemptive, 2},
        {PolicyKind::kEdfNonPreemptive, 4},
        {PolicyKind::kApproxSrpt, 1},
        {PolicyKind::kApproxSrpt, 2},
        {PolicyKind::kApproxSrpt, 4},
        {PolicyKind::kConcordJbsqAdaptive, 1},
        {PolicyKind::kConcordJbsqAdaptive, 2},
        {PolicyKind::kConcordJbsqAdaptive, 4},
        {PolicyKind::kSingleQueueUipi, 1},
        {PolicyKind::kSingleQueueUipi, 2},
        {PolicyKind::kSingleQueueUipi, 4},
    }),
    ParamName);

// The PR 4 zero-allocation guarantee survives the policy layer: identical to
// runtime_test.cc's audit but running through the layered dispatch path with
// the policy explicitly selected. Single shard, ConcordJbsq — the
// configuration the steady-state throughput claim is made for.
TEST(PolicyAllocationTest, ConcordJbsqSteadyStateIsAllocationFree) {
  Runtime::Options options;
  options.worker_count = 2;
  options.jbsq_depth = 2;
  options.policy = PolicyKind::kConcordJbsq;
  options.work_conserving_dispatcher = false;
  options.quantum_us = 500.0;  // no preemptions: fiber demand stays at warmup level
  std::atomic<int> handled{0};
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [&](const RequestView&) {
    SpinWithProbesUs(1.0);
    handled.fetch_add(1);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 300; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.BeginAllocationAudit();
  for (std::uint64_t i = 300; i < 600; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  const std::uint64_t audited_ops = runtime.EndAllocationAudit();
  runtime.Shutdown();
  EXPECT_EQ(handled.load(), 600);
  EXPECT_EQ(audited_ops, 0u) << "policy layer broke the allocation-free hot path";
}

// The same audit across every policy, with deadline-carrying submits so the
// audit window also covers the ordered central-queue insert (EDF,
// approx-SRPT), the slack-histogram instrument, the per-class EWMA update
// and the adaptive controller's window fold — none of which may allocate in
// steady state.
TEST(PolicyAllocationTest, EveryPolicySteadyStateIsAllocationFree) {
  for (PolicyKind policy :
       {PolicyKind::kConcordJbsq, PolicyKind::kSingleQueuePreemptive,
        PolicyKind::kFcfsNonPreemptive, PolicyKind::kEdfNonPreemptive, PolicyKind::kApproxSrpt,
        PolicyKind::kConcordJbsqAdaptive, PolicyKind::kSingleQueueUipi}) {
    SCOPED_TRACE(PolicyKindName(policy));
    Runtime::Options options;
    options.worker_count = 2;
    options.jbsq_depth = 2;
    options.policy = policy;
    options.work_conserving_dispatcher = false;
    options.quantum_us = 500.0;  // no preemptions: fiber demand stays at warmup level
    std::atomic<int> handled{0};
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [&](const RequestView&) {
      SpinWithProbesUs(1.0);
      handled.fetch_add(1);
    };
    Runtime runtime(options, callbacks);
    runtime.Start();
    for (std::uint64_t i = 0; i < 300; ++i) {
      while (!runtime.Submit(i, static_cast<int>(i % 2), nullptr, /*deadline_us=*/10.0)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    runtime.BeginAllocationAudit();
    for (std::uint64_t i = 300; i < 600; ++i) {
      while (!runtime.Submit(i, static_cast<int>(i % 2), nullptr, /*deadline_us=*/10.0)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    const std::uint64_t audited_ops = runtime.EndAllocationAudit();
    runtime.Shutdown();
    EXPECT_EQ(handled.load(), 600);
    EXPECT_EQ(audited_ops, 0u) << PolicyKindName(policy)
                               << " allocated on the deadline-carrying hot path";
  }
}

// Round-trip the parsers the shared --policy=/--shards= plumbing uses.
TEST(PolicySelectionTest, ParsersAcceptCanonicalAndAliasTokens) {
  PolicyKind kind;
  EXPECT_TRUE(ParsePolicyKind("concord-jbsq", &kind));
  EXPECT_EQ(kind, PolicyKind::kConcordJbsq);
  EXPECT_TRUE(ParsePolicyKind("concord", &kind));
  EXPECT_EQ(kind, PolicyKind::kConcordJbsq);
  EXPECT_TRUE(ParsePolicyKind("single-queue", &kind));
  EXPECT_EQ(kind, PolicyKind::kSingleQueuePreemptive);
  EXPECT_TRUE(ParsePolicyKind("shinjuku", &kind));
  EXPECT_EQ(kind, PolicyKind::kSingleQueuePreemptive);
  EXPECT_TRUE(ParsePolicyKind("fcfs", &kind));
  EXPECT_EQ(kind, PolicyKind::kFcfsNonPreemptive);
  EXPECT_TRUE(ParsePolicyKind("persephone", &kind));
  EXPECT_EQ(kind, PolicyKind::kFcfsNonPreemptive);
  EXPECT_TRUE(ParsePolicyKind("edf", &kind));
  EXPECT_EQ(kind, PolicyKind::kEdfNonPreemptive);
  EXPECT_TRUE(ParsePolicyKind("approx-srpt", &kind));
  EXPECT_EQ(kind, PolicyKind::kApproxSrpt);
  EXPECT_TRUE(ParsePolicyKind("srpt", &kind));
  EXPECT_EQ(kind, PolicyKind::kApproxSrpt);
  EXPECT_TRUE(ParsePolicyKind("concord-adaptive", &kind));
  EXPECT_EQ(kind, PolicyKind::kConcordJbsqAdaptive);
  EXPECT_TRUE(ParsePolicyKind("adaptive", &kind));
  EXPECT_EQ(kind, PolicyKind::kConcordJbsqAdaptive);
  EXPECT_TRUE(ParsePolicyKind("single-queue-uipi", &kind));
  EXPECT_EQ(kind, PolicyKind::kSingleQueueUipi);
  EXPECT_TRUE(ParsePolicyKind("uipi", &kind));
  EXPECT_EQ(kind, PolicyKind::kSingleQueueUipi);
  for (PolicyKind p : {PolicyKind::kConcordJbsq, PolicyKind::kSingleQueuePreemptive,
                       PolicyKind::kFcfsNonPreemptive, PolicyKind::kEdfNonPreemptive,
                       PolicyKind::kApproxSrpt, PolicyKind::kConcordJbsqAdaptive,
                       PolicyKind::kSingleQueueUipi}) {
    PolicyKind round_tripped;
    ASSERT_TRUE(ParsePolicyKind(PolicyKindName(p), &round_tripped));
    EXPECT_EQ(round_tripped, p);
  }
  ShardPlacement placement;
  EXPECT_TRUE(ParseShardPlacement("rr", &placement));
  EXPECT_EQ(placement, ShardPlacement::kRoundRobin);
  EXPECT_TRUE(ParseShardPlacement("jsq", &placement));
  EXPECT_EQ(placement, ShardPlacement::kJsqOccupancy);
}

TEST(PolicySelectionTest, ParsersRejectUnknownTokens) {
  // Unknown tokens must be rejected (not defaulted): a typo in --policy= that
  // silently fell back to ConcordJbsq would invalidate a whole bench run.
  PolicyKind kind = PolicyKind::kConcordJbsq;
  for (const char* bad : {"unknown", "mlfq", "concord-", "edf2", "srpt ", "EDF", ""}) {
    EXPECT_FALSE(ParsePolicyKind(bad, &kind)) << "accepted \"" << bad << "\"";
  }
  ShardPlacement placement = ShardPlacement::kRoundRobin;
  for (const char* bad : {"bogus", "hash", "rr ", "JSQ", ""}) {
    EXPECT_FALSE(ParseShardPlacement(bad, &placement)) << "accepted \"" << bad << "\"";
  }
}

// A bad token on the command line is fatal, and the message must list every
// valid token so the fix is one copy-paste away.
TEST(PolicySelectionDeathTest, UnknownPolicyFlagDiesListingValidTokens) {
  const char* argv[] = {"bench", "--policy=mlfq"};
  EXPECT_DEATH(SelectionFromArgsOrEnv(2, const_cast<char**>(argv)),
               "unknown --policy=mlfq.*valid:.*concord-jbsq.*single-queue.*fcfs"
               ".*edf.*approx-srpt.*concord-adaptive.*single-queue-uipi");
}

TEST(PolicySelectionDeathTest, UnknownPlacementFlagDiesListingValidTokens) {
  const char* argv[] = {"bench", "--placement=hash"};
  EXPECT_DEATH(SelectionFromArgsOrEnv(2, const_cast<char**>(argv)),
               "unknown --placement=hash.*valid:.*rr.*jsq");
}

TEST(PolicySelectionTest, SelectionReadsFlagsOverEnvironment) {
  ::setenv("CONCORD_POLICY", "fcfs", 1);
  ::setenv("CONCORD_SHARDS", "4", 1);
  ::setenv("CONCORD_PLACEMENT", "jsq", 1);
  const char* argv_flags[] = {"bench", "--policy=single-queue", "--shards=2",
                              "--placement=rr"};
  RuntimeSelection from_flags =
      SelectionFromArgsOrEnv(4, const_cast<char**>(argv_flags));
  EXPECT_EQ(from_flags.policy, PolicyKind::kSingleQueuePreemptive);
  EXPECT_EQ(from_flags.shard_count, 2);
  EXPECT_EQ(from_flags.placement, ShardPlacement::kRoundRobin);
  const char* argv_bare[] = {"bench"};
  RuntimeSelection from_env = SelectionFromArgsOrEnv(1, const_cast<char**>(argv_bare));
  EXPECT_EQ(from_env.policy, PolicyKind::kFcfsNonPreemptive);
  EXPECT_EQ(from_env.shard_count, 4);
  EXPECT_EQ(from_env.placement, ShardPlacement::kJsqOccupancy);
  ::unsetenv("CONCORD_POLICY");
  ::unsetenv("CONCORD_SHARDS");
  ::unsetenv("CONCORD_PLACEMENT");
  RuntimeSelection defaults = SelectionFromArgsOrEnv(1, const_cast<char**>(argv_bare));
  EXPECT_EQ(defaults.policy, PolicyKind::kConcordJbsq);
  EXPECT_EQ(defaults.shard_count, 1);
  EXPECT_EQ(defaults.placement, ShardPlacement::kRoundRobin);
}

}  // namespace
}  // namespace concord
