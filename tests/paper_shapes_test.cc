// Integration tests: the paper's headline results as assertions.
//
// Each test pins one claim from the evaluation (§5) at reduced sample counts
// — orderings and coarse magnitudes, robust to simulation noise. The bench
// binaries regenerate the full figures; these tests keep the claims true as
// the code evolves.

#include <gtest/gtest.h>

#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/overhead_model.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

ExperimentParams QuickParams() {
  ExperimentParams params;
  params.request_count = 30000;
  return params;
}

double Crossover(const SystemConfig& config, const ServiceDistribution& distribution,
                 double lo_krps, double hi_krps) {
  return FindMaxLoadUnderSlo(config, DefaultCosts(), distribution, kPaperSloSlowdown, lo_krps,
                             hi_krps, QuickParams(), /*tolerance=*/0.04);
}

// Fig. 6 (q=2us): Concord sustains substantially more load than Shinjuku on
// the YCSB-like bimodal; Shinjuku in turn beats Persephone-FCFS... at this
// quantum Persephone's lack of preemption and Shinjuku's IPI tax land close,
// so only the Concord gap is pinned tightly.
TEST(PaperShapesTest, Fig6ConcordBeatsShinjukuAtSmallQuantum) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  const double shinjuku = Crossover(MakeShinjuku(14, UsToNs(2.0)), *spec.distribution, 20, 290);
  const double concord = Crossover(MakeConcord(14, UsToNs(2.0)), *spec.distribution, 20, 290);
  EXPECT_GT(concord, shinjuku * 1.25);  // paper: +45%
}

// Fig. 7: on the heavy-tailed USR-like bimodal, Persephone-FCFS crosses the
// SLO well before the preemptive systems (q=5us, where preemption is cheap
// for both), and Concord's margin over Shinjuku widens at q=2us.
TEST(PaperShapesTest, Fig7FcfsCrossesMuchEarlierOnHeavyTail) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const double persephone =
      Crossover(MakePersephoneFcfs(14), *spec.distribution, 100, 3700);
  const double shinjuku5 =
      Crossover(MakeShinjuku(14, UsToNs(5.0)), *spec.distribution, 100, 3700);
  EXPECT_GT(shinjuku5, persephone * 1.2);

  const double shinjuku2 =
      Crossover(MakeShinjuku(14, UsToNs(2.0)), *spec.distribution, 100, 3700);
  const double concord2 = Crossover(MakeConcord(14, UsToNs(2.0)), *spec.distribution, 100, 3700);
  EXPECT_GT(concord2, shinjuku2 * 1.15);  // paper: +52% at q=2us
}

// Fig. 8 (left): on Fixed(1us) no mechanism matters — all three systems
// saturate together at the ingress bound, Concord within a few percent.
TEST(PaperShapesTest, Fig8FixedWorkloadIsAWash) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
  const double persephone = Crossover(MakePersephoneFcfs(14), *spec.distribution, 200, 3600);
  const double shinjuku =
      Crossover(MakeShinjuku(14, UsToNs(5.0)), *spec.distribution, 200, 3600);
  const double concord = Crossover(MakeConcord(14, UsToNs(5.0)), *spec.distribution, 200, 3600);
  EXPECT_NEAR(concord / shinjuku, 1.0, 0.06);
  EXPECT_NEAR(persephone / shinjuku, 1.0, 0.06);
}

// Fig. 9 (q=2us): on LevelDB GET/SCAN, the full ordering holds with a wide
// Concord margin.
TEST(PaperShapesTest, Fig9LevelDbOrdering) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const double persephone = Crossover(MakePersephoneFcfs(14), *spec.distribution, 2, 58);
  const double shinjuku = Crossover(MakeShinjuku(14, UsToNs(2.0)), *spec.distribution, 2, 58);
  const double concord = Crossover(MakeConcord(14, UsToNs(2.0)), *spec.distribution, 2, 58);
  EXPECT_GT(shinjuku, persephone);
  EXPECT_GT(concord, shinjuku * 1.15);  // paper: +83%
}

// Fig. 11: cumulative mechanisms never hurt: Shinjuku <= Co-op+SQ <=
// Co-op+JBSQ(2) <= Concord (small tolerance for bisection noise).
TEST(PaperShapesTest, Fig11AblationIsMonotone) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const double q = UsToNs(2.0);
  const double shinjuku = Crossover(MakeShinjuku(14, q), *spec.distribution, 2, 58);
  const double coop_sq = Crossover(MakeCoopSingleQueue(14, q), *spec.distribution, 2, 58);
  const double coop_jbsq = Crossover(MakeCoopJbsq(14, q), *spec.distribution, 2, 58);
  const double concord = Crossover(MakeConcord(14, q), *spec.distribution, 2, 58);
  EXPECT_GE(coop_sq, shinjuku * 0.97);
  EXPECT_GE(coop_jbsq, coop_sq * 0.97);
  // Work conservation is a small effect at high load and, in this model,
  // roughly neutral-to-slightly-negative at a 2us quantum (the paper
  // measured +9%; see EXPERIMENTS.md); it must not cost more than ~15%, and
  // it clearly helps at small core counts (Fig. 13 test below).
  EXPECT_GE(concord, coop_jbsq * 0.85);
  EXPECT_GT(concord, shinjuku * 1.15);
}

// Fig. 12: the combined mechanisms cut total preemption overhead by ~4x at
// microsecond quanta.
TEST(PaperShapesTest, Fig12FourTimesLowerPreemptionOverhead) {
  const CostModel costs = DefaultCosts();
  for (double q_us : {1.0, 2.0, 5.0}) {
    const double shinjuku =
        PreemptionOverhead(costs, PreemptMechanism::kIpi, QueueDiscipline::kSingleQueue,
                           UsToNs(q_us), UsToNs(500.0), /*include_switch_and_fetch=*/true)
            .total;
    const double concord =
        PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine, QueueDiscipline::kJbsq,
                           UsToNs(q_us), UsToNs(500.0), true)
            .total;
    EXPECT_GT(shinjuku / concord, 3.0) << "q=" << q_us;
  }
}

// Fig. 13: on a 2-worker "small VM", the work-conserving dispatcher raises
// the sustainable load substantially (paper: +33%).
TEST(PaperShapesTest, Fig13DispatcherWorkHelpsSmallVms) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const double without =
      Crossover(MakeConcordNoDispatcherWork(2, UsToNs(5.0)), *spec.distribution, 0.5, 12.0);
  const double with = Crossover(MakeConcord(2, UsToNs(5.0)), *spec.distribution, 0.5, 12.0);
  EXPECT_GT(with, without * 1.12);
}

// Fig. 5: imprecise preemption with sigma <= 2us behaves like precise
// preemption at moderate load, while no preemption blows up.
TEST(PaperShapesTest, Fig5ImprecisionIsBenign) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const CostModel costs = IdealizedCosts();
  ExperimentParams params = QuickParams();
  params.request_count = 60000;
  const double load = 0.7 * 14.0 / NsToUs(spec.distribution->MeanNs()) * 1000.0;

  SystemConfig precise = MakeShinjuku(14, UsToNs(5.0));
  precise.preempt = PreemptMechanism::kCoopCacheLine;
  precise.preempt_delay_sigma_ns = 0.0;
  SystemConfig imprecise = precise;
  imprecise.preempt_delay_sigma_ns = UsToNs(2.0);

  const double p_precise =
      RunLoadPoint(precise, costs, *spec.distribution, load, params).p999_slowdown;
  const double p_imprecise =
      RunLoadPoint(imprecise, costs, *spec.distribution, load, params).p999_slowdown;
  const double p_none = RunLoadPoint(MakePersephoneFcfs(14), costs, *spec.distribution, load,
                                     params)
                            .p999_slowdown;
  // "Almost identical" in the figure; at this sample count the p99.9 of the
  // imprecise variant wobbles, so pin the order of magnitude.
  EXPECT_LT(p_imprecise, p_precise * 3.0 + 5.0);
  EXPECT_GT(p_none, p_precise * 4.0);
}

// Fig. 15: cooperation stays well under user-space IPIs at small quanta.
TEST(PaperShapesTest, Fig15CoopBeatsUipiAtSmallQuanta) {
  const CostModel costs = DefaultCosts();
  for (double q_us : {1.0, 2.0, 5.0}) {
    const double uipi = PreemptionOverhead(costs, PreemptMechanism::kUipi,
                                           QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                           UsToNs(500.0), false)
                            .total;
    const double coop = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                           QueueDiscipline::kJbsq, UsToNs(q_us), UsToNs(500.0),
                                           false)
                            .total;
    EXPECT_GT(uipi / coop, 1.5) << "q=" << q_us;
  }
}

// Fig. 14: at low load, Concord's stealing adds a little p99.9 slowdown over
// the no-stealing configuration (the documented drawback, §5.5) — and the
// opt-out removes it.
TEST(PaperShapesTest, Fig14LowLoadDrawbackExistsAndIsBounded) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ExperimentParams params = QuickParams();
  params.request_count = 60000;
  const CostModel costs = DefaultCosts();
  const double load = 80.0;  // ~30% of capacity
  const double with_steal =
      RunLoadPoint(MakeConcord(14, UsToNs(5.0)), costs, *spec.distribution, load, params)
          .p999_slowdown;
  const double without_steal =
      RunLoadPoint(MakeConcordNoDispatcherWork(14, UsToNs(5.0)), costs, *spec.distribution,
                   load, params)
          .p999_slowdown;
  EXPECT_GE(with_steal, without_steal - 0.5);
  // ... but stays far below the 50x SLO (the paper's "acceptable" argument).
  EXPECT_LT(with_steal, 25.0);
}

}  // namespace
}  // namespace concord
