// Unit and property tests for src/stats: histogram quantile error bounds,
// summary statistics, slowdown tracking, table formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/stats/histogram.h"
#include "src/stats/slowdown.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace concord {
namespace {

TEST(HistogramTest, EmptyHistogramReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234.5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 1234.5);
  EXPECT_DOUBLE_EQ(h.Max(), 1234.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 1234.5);
  // Any quantile of a single sample is (up to bucket width) that sample.
  EXPECT_NEAR(h.Quantile(0.5), 1234.5, 1234.5 / 128.0 + 1e-9);
}

TEST(HistogramTest, ExactMeanTracking) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(HistogramTest, QuantilesMonotonic) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.Exponential(1000.0));
  }
  double previous = 0.0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, previous) << "at q=" << q;
    previous = value;
  }
  EXPECT_LE(h.Quantile(1.0), h.Max());
  EXPECT_GE(h.Quantile(0.0), h.Min() - 1e-12);
}

TEST(HistogramTest, RecordManyEquivalentToRepeatedRecord) {
  Histogram a;
  Histogram b;
  a.RecordMany(500.0, 10);
  for (int i = 0; i < 10; ++i) {
    b.Record(500.0);
  }
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), b.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Exponential(100.0);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  // The sums accumulate in different orders, so allow float rounding.
  EXPECT_NEAR(a.Mean(), combined.Mean(), combined.Mean() * 1e-9);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(100.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.999), 0.0);
}

TEST(HistogramTest, ZeroAndSubUnitValues) {
  Histogram h;
  h.Record(0.0);
  h.Record(0.25);
  h.Record(0.75);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_LE(h.Quantile(0.34), 0.3);
  EXPECT_GE(h.Quantile(1.0), 0.7);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(1e12);  // beyond the pre-sized range; must grow
  h.Record(1.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_NEAR(h.Quantile(1.0), 1e12, 1e12 / 100.0);
}

// Property: quantile relative error is bounded by the bucket resolution for
// several shapes of data.
class HistogramAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramAccuracyTest, QuantileRelativeErrorBounded) {
  const int shape = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape) + 100);
  std::vector<double> values;
  Histogram h;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = 0.0;
    switch (shape) {
      case 0:
        v = rng.Uniform(1.0, 1e6);
        break;
      case 1:
        v = rng.Exponential(5000.0);
        break;
      case 2:
        v = rng.LogNormal(8.0, 2.0);
        break;
      case 3:
        v = rng.Bernoulli(0.995) ? 500.0 : 500000.0;  // bimodal like the paper
        break;
      default:
        v = rng.Uniform(0.0, 2.0);  // stresses the sub-unit linear region
        break;
    }
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n))) - 1;
    const double exact = values[rank];
    const double approx = h.Quantile(q);
    // 1/128 bucket resolution plus slack for rank-vs-edge conventions; the
    // absolute floor covers the sub-unit linear region.
    EXPECT_NEAR(approx, exact, std::max(exact * 0.02, 0.02))
        << "shape=" << shape << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HistogramAccuracyTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(HistogramTest, TailQuantilesMatchExactOrderStatisticsOnKnownRanks) {
  // The metrics sampler publishes p99/p99.9 slowdowns from this histogram,
  // so the tail ranks must land in the right bucket exactly — not merely
  // within noise. 990 short requests at slowdown 1.0 and 10 stragglers at
  // 100.0: p99 is the 990th order statistic (still 1.0), p99.9 the 999th
  // (a straggler).
  Histogram h;
  h.RecordMany(1.0, 990);
  h.RecordMany(100.0, 10);
  EXPECT_NEAR(h.Quantile(0.5), 1.0, 1.0 / 128.0);
  EXPECT_NEAR(h.Quantile(0.99), 1.0, 1.0 / 128.0);
  EXPECT_NEAR(h.Quantile(0.999), 100.0, 100.0 / 128.0);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 100.0 / 128.0);
}

TEST(HistogramTest, TailQuantileRelativeErrorVsExactOrderStatistics) {
  // p99/p99.9 against a sorted copy on a heavy-tailed slowdown-shaped
  // sample (clamped >= 1 like the sampler's slowdown stream): the log-linear
  // buckets guarantee <= 1/128 relative error at any magnitude.
  Rng rng(2026);
  std::vector<double> values;
  Histogram h;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = std::max(1.0, rng.LogNormal(0.5, 1.5));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.99, 0.999}) {
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
    const double exact = values[rank];
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, exact * (1.0 / 128.0 + 0.005)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Quantization regressions for the within-bucket interpolation fix: Quantile
// used to report the containing bucket's upper edge for every rank, biasing
// results high by up to a full bucket width. These pin the interpolated
// behavior deterministically so a regression to edge-reporting fails loudly.
// ---------------------------------------------------------------------------

TEST(HistogramQuantizationTest, InterpolatesByRankWithinOneWideBucket) {
  // One sub-bucket per octave makes the bucket [256, 512) a full octave wide:
  // the worst case for edge-reporting. 50 samples at 300 and 50 at 500 land
  // in that one bucket; rank interpolation places the k-th of 100 samples at
  // k/100 of the way across it, deterministically.
  Histogram h(/*sub_buckets_per_octave=*/1);
  h.RecordMany(300.0, 50);
  h.RecordMany(500.0, 50);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 320.0);  // 256 + 0.25 * 256
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 448.0);  // 256 + 0.75 * 256
  // Edge-reporting returned the upper edge (512, beyond every sample) for
  // both ranks; interpolation keeps low ranks strictly below high ranks.
  EXPECT_LT(h.Quantile(0.25), h.Quantile(0.75));
  EXPECT_LE(h.Quantile(1.0), h.Max());
}

TEST(HistogramQuantizationTest, AllEqualSamplesReportTheExactValueAtEveryRank) {
  // Clamping the interpolated value to the observed [min, max] means a
  // degenerate distribution has zero quantization error at any precision.
  for (int precision : {1, 16, 128}) {
    Histogram h(precision);
    h.RecordMany(300.0, 1000);
    for (double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
      EXPECT_DOUBLE_EQ(h.Quantile(q), 300.0) << "precision=" << precision << " q=" << q;
    }
  }
}

TEST(HistogramQuantizationTest, ErrorScalesWithSubBucketPrecision) {
  // The documented bound — error <= one bucket width, i.e. ~value/precision —
  // must hold at every precision tier, so coarse histograms degrade
  // gracefully and fine ones actually deliver their resolution.
  Rng rng(77);
  std::vector<double> values;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.Uniform(1000.0, 4000.0));
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int precision : {16, 64, 128, 512}) {
    Histogram h(precision);
    for (double v : values) {
      h.Record(v);
    }
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      const auto rank =
          static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
      const double exact = sorted[rank];
      EXPECT_NEAR(h.Quantile(q), exact, exact * (2.0 / precision) + 1e-9)
          << "precision=" << precision << " q=" << q;
    }
  }
}

TEST(HistogramQuantizationTest, InterpolationCentersTheBiasInsteadOfInflatingIt) {
  // Edge-reporting is biased strictly high: every reported quantile sits at
  // its bucket's top. Interpolation centers the error, so across a dense
  // quantile sweep the mean signed error (in bucket widths) must sit near
  // zero rather than near +1.
  Rng rng(123);
  std::vector<double> values;
  const int n = 100000;
  Histogram h(/*sub_buckets_per_octave=*/16);  // coarse: bias would be visible
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2000.0);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  double signed_error_in_widths = 0.0;
  int probes = 0;
  for (double q = 0.05; q < 0.995; q += 0.01) {
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
    const double exact = values[rank];
    const double width = exact / 16.0;  // ~one bucket at this magnitude
    signed_error_in_widths += (h.Quantile(q) - exact) / width;
    ++probes;
  }
  const double mean_bias = signed_error_in_widths / probes;
  EXPECT_LT(std::abs(mean_bias), 0.2) << "mean bias " << mean_bias
                                      << " bucket widths; edge-reporting sat near +0.5";
}

TEST(SummaryTest, KnownValues) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Record(v);
  }
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(SummaryTest, MergeMatchesCombined) {
  Summary a;
  Summary b;
  Summary combined;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    if (i < 3000) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), combined.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
}

TEST(SummaryTest, MergeIntoEmpty) {
  Summary a;
  Summary b;
  b.Record(1.0);
  b.Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(SlowdownTrackerTest, ComputesRatio) {
  SlowdownTracker t;
  t.Record(/*residence=*/5000.0, /*service=*/1000.0);
  EXPECT_EQ(t.Count(), 1u);
  EXPECT_NEAR(t.MeanSlowdown(), 5.0, 0.05);
}

TEST(SlowdownTrackerTest, PerClassBreakdown) {
  SlowdownTracker t;
  for (int i = 0; i < 1000; ++i) {
    t.Record(2000.0, 1000.0, /*request_class=*/0);  // slowdown 2
    t.Record(50000.0, 1000.0, /*request_class=*/1);  // slowdown 50
  }
  EXPECT_NEAR(t.ClassQuantileSlowdown(0, 0.5), 2.0, 0.05);
  EXPECT_NEAR(t.ClassQuantileSlowdown(1, 0.5), 50.0, 0.5);
  EXPECT_DOUBLE_EQ(t.ClassQuantileSlowdown(99, 0.5), 0.0);
  // Overall median sits between the two class values.
  const double overall = t.QuantileSlowdown(0.5);
  EXPECT_GE(overall, 2.0 * 0.95);
  EXPECT_LE(overall, 50.0 * 1.05);
}

TEST(SlowdownTrackerTest, TailDominatedByWorstClass) {
  SlowdownTracker t;
  Rng rng(37);
  // 0.2% of requests are pathologically slow: solidly past the p99.9 rank.
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.998)) {
      t.Record(1100.0, 1000.0, 0);
    } else {
      t.Record(100000.0, 1000.0, 1);
    }
  }
  EXPECT_GT(t.P999Slowdown(), 50.0);
  EXPECT_LT(t.QuantileSlowdown(0.99), 2.0);
}

TEST(SlowdownTrackerTest, LatencyQuantiles) {
  SlowdownTracker t;
  for (int i = 1; i <= 100; ++i) {
    t.Record(static_cast<double>(i) * 100.0, 100.0);
  }
  EXPECT_NEAR(t.QuantileLatencyNs(0.5), 5000.0, 100.0);
}

TEST(TablePrinterTest, AlignedOutputContainsAllCells) {
  TablePrinter table({"load", "p999"});
  table.AddRow({"100", "3.5"});
  table.AddRow({"200", "17.2"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("17.2"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(TablePrinterTest, CsvFormat) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(0.1234, 1), "12.3%");
}

TEST(TablePrinterDeathTest, RowArityMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(HistogramDeathTest, MergeRejectsPrecisionMismatch) {
  // Regression: bucket indices are only commensurable at equal precision;
  // merging a 64-sub-bucket histogram into a 128-sub-bucket one must abort in
  // every build mode rather than scramble quantiles.
  Histogram fine(128);
  Histogram coarse(64);
  coarse.Record(10.0);
  EXPECT_DEATH(fine.Merge(coarse), "precision mismatch");
}

TEST(HistogramDeathTest, RejectsNonFiniteValuesInAllBuildModes) {
  // Regression: this used to be a DCHECK, so release builds fed NaN/inf into
  // ilogb and binned them at a nonsense index, silently corrupting quantiles.
  Histogram h;
  EXPECT_DEATH(h.Record(std::numeric_limits<double>::quiet_NaN()), "non-finite");
  EXPECT_DEATH(h.Record(std::numeric_limits<double>::infinity()), "non-finite");
  EXPECT_DEATH(h.RecordMany(-std::numeric_limits<double>::infinity(), 3), "non-finite");
}

TEST(HistogramTest, MergeAtEqualPrecisionCombinesCountsAndExtrema) {
  Histogram a(64);
  Histogram b(64);
  a.Record(1.0);
  a.Record(100.0);
  b.Record(0.5);
  b.Record(1000.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_DOUBLE_EQ(a.Min(), 0.5);
  EXPECT_DOUBLE_EQ(a.Max(), 1000.0);
  EXPECT_GT(a.Quantile(0.99), 100.0);
}

}  // namespace
}  // namespace concord
