// Tests for the source-level probe lint (src/analysis/source_lint.h).
//
// The ProbeCoverage suite at the bottom runs the real lint over the shipped
// handler code (src/apps/, examples/) and fails on any violation, so probe
// coverage regressions fail CI.

#include "src/analysis/source_lint.h"

#include <string>

#include <gtest/gtest.h>

namespace concord {
namespace {

// A file is "instrumented" if it mentions the probe API; prepend this so the
// full rule set applies.
const char kInstrumentedPreamble[] = "#include \"src/runtime/instrument.h\"\n";

std::string Instrumented(const std::string& body) { return kInstrumentedPreamble + body; }

TEST(SourceLint, FlagsLongLoopWithoutProbe) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      for (int i = 0; i < n; ++i) {
        a(i);
        b(i);
        c(i);
        d(i);
        e(i);
        f(i);
        g(i);
      }
    }
  )cc");
  const auto violations = LintSource("t.cc", source, LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, LintViolation::Kind::kLoopWithoutProbe);
  EXPECT_EQ(violations[0].line, 4);
  EXPECT_EQ(violations[0].file, "t.cc");
}

TEST(SourceLint, ProbeInBodySatisfiesTheLoop) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      for (int i = 0; i < n; ++i) {
        a(i);
        b(i);
        c(i);
        d(i);
        e(i);
        f(i);
        CONCORD_PROBE_LOOP_BACKEDGE();
      }
    }
  )cc");
  EXPECT_TRUE(LintSource("t.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, ShortBodiesAreExemptAsUnrollable) {
  // A two-line body models a loop the pass would unroll into the enclosing
  // probe interval (min_loop_body_instructions rule).
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      for (int i = 0; i < n; ++i) {
        acc += i;
        acc ^= i << 1;
      }
      CONCORD_PROBE();
    }
  )cc");
  EXPECT_TRUE(LintSource("t.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, NestedProbeCountsForOuterLoop) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      for (int i = 0; i < n; ++i) {
        prepare(i);
        for (int j = 0; j < n; ++j) {
          work(i, j);
          CONCORD_PROBE_LOOP_BACKEDGE();
        }
        finish(i);
        publish(i);
        log(i);
      }
    }
  )cc");
  EXPECT_TRUE(LintSource("t.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, SuppressionCommentSilencesFinding) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      // concord-lint: allow-no-probe (bounded: caller probes every row)
      while (n > 0) {
        a(n);
        b(n);
        c(n);
        d(n);
        e(n);
        f(n);
        --n;
      }
    }
  )cc");
  EXPECT_TRUE(LintSource("t.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, ProbeMentionedInCommentOrStringDoesNotCount) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      for (int i = 0; i < n; ++i) {
        // CONCORD_PROBE() would go here some day
        log("CONCORD_PROBE");
        b(i);
        c(i);
        d(i);
        e(i);
        f(i);
        g(i);
      }
    }
  )cc");
  const auto violations = LintSource("t.cc", source, LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, LintViolation::Kind::kLoopWithoutProbe);
}

TEST(SourceLint, DoWhileBodyIsChecked) {
  const std::string source = Instrumented(R"cc(
    void Handler(int n) {
      do {
        a(n);
        b(n);
        c(n);
        d(n);
        e(n);
        f(n);
        g(n);
      } while (--n > 0);
    }
  )cc");
  const auto violations = LintSource("t.cc", source, LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 4);
}

TEST(SourceLint, LongFunctionWithOnlyShortLoopsIsFlagged) {
  // Each loop individually falls under the unroll exemption, but 45 lines of
  // handler code with no probe at all is a quantum-sized hole.
  std::string body;
  for (int block = 0; block < 14; ++block) {
    body += "  for (int i = 0; i < n; ++i) {\n    acc += i;\n  }\n";
  }
  const std::string source =
      Instrumented("void Handler(int n) {\nint acc = 0;\n" + body + "}\n");
  const auto violations = LintSource("t.cc", source, LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, LintViolation::Kind::kFunctionWithoutProbe);
}

TEST(SourceLint, DriverLoopsInUninstrumentedFilesAreIgnored) {
  // Load-sweep drivers run on the main thread, outside the runtime: no probe
  // obligations unless the file participates in instrumentation.
  const std::string source = R"cc(
    int main() {
      for (double load : loads) {
        auto row = MakeRow(load);
        for (const auto& system : systems) {
          row.push_back(RunLoadPoint(system, load));
          record(row);
          publish(row);
          flush(row);
          archive(row);
        }
        print(row);
      }
    }
  )cc";
  EXPECT_TRUE(LintSource("driver.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, HandlerLambdaInUninstrumentedFileIsChecked) {
  const std::string source = R"cc(
    int main() {
      callbacks.handle_request = [&](const concord::RequestView& view) {
        for (std::size_t i = 0; i < rows.size(); ++i) {
          parse(rows[i]);
          validate(rows[i]);
          apply(rows[i]);
          index(rows[i]);
          publish(rows[i]);
          audit(rows[i]);
          archive(rows[i]);
        }
      };
      runtime.Start();
    }
  )cc";
  const auto violations = LintSource("server.cc", source, LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, LintViolation::Kind::kHandlerLoopWithoutProbe);
}

TEST(SourceLint, HandlerLambdaDelegatingToInstrumentedCodeIsClean) {
  const std::string source = R"cc(
    int main() {
      callbacks.handle_request = [&service](const concord::RequestView& view) {
        service.Handle(view);
      };
    }
  )cc";
  EXPECT_TRUE(LintSource("server.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, EverythingModeLintsUninstrumentedFiles) {
  const std::string source = R"cc(
    void NotAHandler(int n) {
      while (n > 0) {
        a(n);
        b(n);
        c(n);
        d(n);
        e(n);
        f(n);
        --n;
      }
    }
  )cc";
  LintConfig advisory;
  advisory.lint_everything = true;
  EXPECT_EQ(LintSource("any.cc", source, advisory).size(), 1u);
  EXPECT_TRUE(LintSource("any.cc", source, LintConfig{}).empty());
}

TEST(SourceLint, UnreadableFileIsAViolation) {
  const auto violations = LintFile("/nonexistent/concord/file.cc", LintConfig{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("unreadable"), std::string::npos);
}

// --- the CI gate: shipped handler code must be probe-clean ---

#ifndef CONCORD_SOURCE_DIR
#error "tests/CMakeLists.txt must define CONCORD_SOURCE_DIR"
#endif

TEST(ProbeCoverage, AppsTreeIsClean) {
  const auto violations = LintTree(std::string(CONCORD_SOURCE_DIR) + "/src/apps", LintConfig{});
  for (const LintViolation& violation : violations) {
    ADD_FAILURE() << ViolationToString(violation);
  }
}

TEST(ProbeCoverage, ExamplesTreeIsClean) {
  const auto violations = LintTree(std::string(CONCORD_SOURCE_DIR) + "/examples", LintConfig{});
  for (const LintViolation& violation : violations) {
    ADD_FAILURE() << ViolationToString(violation);
  }
}

}  // namespace
}  // namespace concord
