// Topology discovery, cpulist parsing, allowed-CPU resolution and placement
// planning (src/common/topology.h). Everything here runs against synthetic
// topologies or the live host's — the suite must pass identically on a
// 1-core container (where every plan degrades to unpinned) and a multi-core
// NUMA box (where plans actually pin).

#include "src/common/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/policy.h"

namespace concord {
namespace {

TEST(ParseCpuListTest, AcceptsSinglesRangesAndMixes) {
  std::vector<int> cpus;
  std::string error;
  ASSERT_TRUE(ParseCpuList("0", &cpus, &error)) << error;
  EXPECT_EQ(cpus, (std::vector<int>{0}));
  ASSERT_TRUE(ParseCpuList("0-3", &cpus, &error)) << error;
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(ParseCpuList("0-3,8,10-11", &cpus, &error)) << error;
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  // Whitespace around tokens (sysfs files end in '\n') and duplicates both
  // normalize away; output is sorted unique regardless of input order.
  ASSERT_TRUE(ParseCpuList(" 3 , 1-2 , 3 \n", &cpus, &error)) << error;
  EXPECT_EQ(cpus, (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpuListTest, RejectsMalformedInput) {
  std::vector<int> cpus;
  std::string error;
  for (const char* bad : {"", ",", "0,", "a", "1-", "-3", "3-1", "1.5", "0x2", "1 2", "2--3"}) {
    EXPECT_FALSE(ParseCpuList(bad, &cpus, &error)) << "accepted \"" << bad << "\"";
    EXPECT_FALSE(error.empty()) << "no reason for \"" << bad << "\"";
  }
}

TEST(ParseCpuListDeathTest, ParseOrDieNamesTheFlagInTheFailure) {
  EXPECT_DEATH(ParseCpuListOrDie("3-1", "--cpus="), "--cpus=.*3-1");
}

TEST(TopologyTest, SyntheticShapesAreConsistent) {
  const Topology topo = Topology::Synthetic(2, 4);
  ASSERT_EQ(topo.CpuCount(), 8);
  EXPECT_EQ(topo.NodeCount(), 2);
  EXPECT_EQ(topo.NumaNodeOf(0), 0);
  EXPECT_EQ(topo.NumaNodeOf(3), 0);
  EXPECT_EQ(topo.NumaNodeOf(4), 1);
  EXPECT_EQ(topo.NumaNodeOf(7), 1);
  EXPECT_EQ(topo.NumaNodeOf(8), -1);  // not in this topology
}

TEST(TopologyTest, DiscoverAlwaysYieldsAUsableTopology) {
  // On any host — including a minimal container with no sysfs — Discover()
  // must return at least one CPU on at least one node (the single-core
  // fallback), never an empty topology that would crash placement.
  const Topology topo = Topology::Discover();
  ASSERT_GE(topo.CpuCount(), 1);
  EXPECT_GE(topo.NodeCount(), 1);
  for (const CpuInfo& cpu : topo.cpus) {
    EXPECT_GE(cpu.cpu, 0);
    EXPECT_EQ(topo.NumaNodeOf(cpu.cpu), cpu.numa_node);
  }
}

TEST(AllowedCpusTest, FlagWinsOverEnvWinsOverAffinityMask) {
  const Topology topo = Topology::Synthetic(1, 16);
  // Flag beats env.
  EXPECT_EQ(AllowedCpusFrom("0-1", "4-7", topo), (std::vector<int>{0, 1}));
  // Env alone.
  EXPECT_EQ(AllowedCpusFrom("", "4-7", topo), (std::vector<int>{4, 5, 6, 7}));
  // Neither: the process affinity mask, which is never empty.
  EXPECT_FALSE(AllowedCpusFrom("", "", Topology::Discover()).empty());
}

TEST(AllowedCpusDeathTest, DiesOnMalformedAndNonexistentCpus) {
  const Topology topo = Topology::Synthetic(1, 4);
  EXPECT_DEATH(AllowedCpusFrom("0-", "", topo), "cpu list");
  // CPU 9 does not exist in a 4-CPU topology: a typo'd --cpus= must abort,
  // not silently run unpinned on the wrong cores.
  EXPECT_DEATH(AllowedCpusFrom("9", "", topo), "requested cpu 9");
}

TEST(AllowedCpusTest, ArgvPlumbingReadsFlagThenEnv) {
  const Topology topo = Topology::Synthetic(1, 16);
  const char* argv[] = {"bench", "--cpus=2-3"};
  ::setenv("CONCORD_CPUS", "5", 1);
  EXPECT_EQ(AllowedCpusFromArgsOrEnv(2, const_cast<char**>(argv), topo),
            (std::vector<int>{2, 3}));
  const char* argv_bare[] = {"bench"};
  EXPECT_EQ(AllowedCpusFromArgsOrEnv(1, const_cast<char**>(argv_bare), topo),
            (std::vector<int>{5}));
  ::unsetenv("CONCORD_CPUS");
}

// --cpus= flows through the shared runtime-selection plumbing like
// --policy=: malformed input is fatal there too.
TEST(SelectionCpusDeathTest, MalformedCpusFlagDies) {
  const char* argv[] = {"bench", "--cpus=1-"};
  EXPECT_DEATH(SelectionFromArgsOrEnv(2, const_cast<char**>(argv)), "cpu list");
}

TEST(SelectionCpusTest, ValidCpusFlagLandsInSelection) {
  // CPU 0 exists on every host, so this passes on the 1-core container too.
  const char* argv[] = {"bench", "--cpus=0"};
  const RuntimeSelection selection = SelectionFromArgsOrEnv(2, const_cast<char**>(argv));
  EXPECT_EQ(selection.cpus, (std::vector<int>{0}));
  const char* argv_bare[] = {"bench"};
  EXPECT_TRUE(SelectionFromArgsOrEnv(1, const_cast<char**>(argv_bare)).cpus.empty());
}

// ---------------------------------------------------------------------------
// Placement planning.

std::vector<int> AllCpus(const Topology& topo) {
  std::vector<int> cpus;
  for (const CpuInfo& cpu : topo.cpus) {
    cpus.push_back(cpu.cpu);
  }
  return cpus;
}

TEST(PlacementPlanTest, PinsEachShardOnOneNodeWithoutCpuReuse) {
  const Topology topo = Topology::Synthetic(2, 8);  // 16 CPUs, 2 nodes
  const PlacementPlan plan = BuildPlacementPlan(topo, AllCpus(topo),
                                                /*shard_count=*/2, /*workers_per_shard=*/3);
  ASSERT_TRUE(plan.pinned);
  ASSERT_EQ(plan.shards.size(), 2u);
  std::set<int> used;
  for (const ShardCpuAssignment& shard : plan.shards) {
    ASSERT_GE(shard.dispatcher_cpu, 0);
    ASSERT_EQ(shard.worker_cpus.size(), 3u);
    EXPECT_TRUE(used.insert(shard.dispatcher_cpu).second) << "dispatcher CPU reused";
    const int node = topo.NumaNodeOf(shard.dispatcher_cpu);
    EXPECT_EQ(shard.numa_node, node);
    for (int cpu : shard.worker_cpus) {
      ASSERT_GE(cpu, 0);
      EXPECT_TRUE(used.insert(cpu).second) << "worker CPU reused";
      // Workers sit on their dispatcher's node: the signal lines the
      // dispatcher writes and the worker polls stay on-die.
      EXPECT_EQ(topo.NumaNodeOf(cpu), node);
    }
  }
}

TEST(PlacementPlanTest, ShardsSpreadAcrossNumaNodes) {
  const Topology topo = Topology::Synthetic(2, 4);  // 8 CPUs, 2 nodes
  const PlacementPlan plan = BuildPlacementPlan(topo, AllCpus(topo),
                                                /*shard_count=*/2, /*workers_per_shard=*/2);
  ASSERT_TRUE(plan.pinned);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_NE(plan.shards[0].numa_node, plan.shards[1].numa_node)
      << "two shards that both fit on their own node must not share one";
}

TEST(PlacementPlanTest, OversubscriptionDegradesToFullyUnpinned) {
  // 3 CPUs cannot seat 2 shards x (1 dispatcher + 2 workers) = 6 threads:
  // the plan must be all-or-nothing unpinned, never a half-pinned hybrid.
  const Topology topo = Topology::Synthetic(1, 3);
  const PlacementPlan plan = BuildPlacementPlan(topo, AllCpus(topo),
                                                /*shard_count=*/2, /*workers_per_shard=*/2);
  EXPECT_FALSE(plan.pinned);
  ASSERT_EQ(plan.shards.size(), 2u);
  for (const ShardCpuAssignment& shard : plan.shards) {
    EXPECT_EQ(shard.dispatcher_cpu, -1);
    for (int cpu : shard.worker_cpus) {
      EXPECT_EQ(cpu, -1);
    }
  }
}

TEST(PlacementPlanTest, SingleCoreHostIsTheCanonicalFallback) {
  const Topology topo = Topology::Synthetic(1, 1);
  const PlacementPlan plan = BuildPlacementPlan(topo, AllCpus(topo),
                                                /*shard_count=*/1, /*workers_per_shard=*/2);
  EXPECT_FALSE(plan.pinned);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].dispatcher_cpu, -1);
}

TEST(PlacementPlanTest, ExactFitPinsEveryThread) {
  const Topology topo = Topology::Synthetic(1, 6);
  const PlacementPlan plan = BuildPlacementPlan(topo, AllCpus(topo),
                                                /*shard_count=*/2, /*workers_per_shard=*/2);
  ASSERT_TRUE(plan.pinned);
  std::set<int> used;
  for (const ShardCpuAssignment& shard : plan.shards) {
    used.insert(shard.dispatcher_cpu);
    used.insert(shard.worker_cpus.begin(), shard.worker_cpus.end());
  }
  EXPECT_EQ(used.size(), 6u);  // every allowed CPU seated exactly once
  EXPECT_EQ(used.count(-1), 0u);
}

TEST(PlacementPlanTest, RestrictedAllowedSetIsHonored) {
  const Topology topo = Topology::Synthetic(2, 8);
  const std::vector<int> allowed = {8, 9, 10};  // node 1 only
  const PlacementPlan plan =
      BuildPlacementPlan(topo, allowed, /*shard_count=*/1, /*workers_per_shard=*/2);
  ASSERT_TRUE(plan.pinned);
  const ShardCpuAssignment& shard = plan.shards[0];
  EXPECT_EQ(shard.numa_node, 1);
  std::vector<int> seated = {shard.dispatcher_cpu};
  seated.insert(seated.end(), shard.worker_cpus.begin(), shard.worker_cpus.end());
  std::sort(seated.begin(), seated.end());
  EXPECT_EQ(seated, allowed);
}

// ---------------------------------------------------------------------------
// Slab mapping.

TEST(SlabMappingTest, MapWriteUnmapRoundTrip) {
  SlabMapping mapping = MapSlab(1 << 16, /*huge_pages=*/false);
  ASSERT_NE(mapping.data, nullptr);
  ASSERT_GE(mapping.bytes, std::size_t{1} << 16);
  // First-touch the whole mapping like a ProducerSlot constructor does.
  unsigned char* bytes = static_cast<unsigned char*>(mapping.data);
  // concord-lint: allow-no-probe (test setup on the test thread)
  for (std::size_t i = 0; i < mapping.bytes; i += 4096) {
    bytes[i] = static_cast<unsigned char>(i);
  }
  UnmapSlab(&mapping);
  EXPECT_EQ(mapping.data, nullptr);
  EXPECT_EQ(mapping.bytes, 0u);
  UnmapSlab(&mapping);  // idempotent on the cleared value
}

TEST(SlabMappingTest, HugePageAdviceIsBestEffort) {
  // MADV_HUGEPAGE may be refused (no THP in the kernel/container); the
  // mapping must work either way and record what happened.
  SlabMapping mapping = MapSlab(std::size_t{4} << 20, /*huge_pages=*/true);
  ASSERT_NE(mapping.data, nullptr);
  static_cast<unsigned char*>(mapping.data)[0] = 1;  // must be writable
  UnmapSlab(&mapping);
}

}  // namespace
}  // namespace concord
