// Cross-validates every executable scheduling policy against its simulator
// preset (src/model/systems.h) on the same bimodal mix.
//
// The gate: the live runtime's p99 slowdown must track the discrete-event
// model's p99 slowdown within tolerance for each of the six policies. The
// model is the spec — it implements the same JBSQ mechanics, preemption
// modes and central-queue orderings analytically — so a live policy whose
// tail diverges from its preset has a mechanism bug, not a tuning problem.
//
// Measurement design, shaped by shared CI hosts (often one CPU for the
// dispatcher, both workers and the pacing thread):
//   - The live side runs a small open-loop bimodal section (10% long
//     requests) at ~27% of 2-worker capacity — low enough that a busy host
//     can keep pace, high enough that shorts actually queue behind longs
//     (the effect every policy differentiates on).
//   - Several trials are attempted, and an over-contended host skips with
//     per-trial diagnostics rather than failing: a box that cannot schedule
//     four threads at microsecond granularity cannot measure tail slowdown.
//     (Same discipline as telemetry_crosscheck_test.cc.)
//   - The EDF slack-histogram identities and the adaptive-quantum clamp are
//     count-based, not timing-based, so those tests are deterministic on
//     any host and never skip.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cycles.h"
#include "src/model/costs.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/runtime/policy.h"
#include "src/runtime/runtime.h"
#include "src/stats/slowdown.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/distribution.h"

namespace concord {
namespace {

// The shared operating point: Bimodal(90:1, 10:100) us — the fig06 shape,
// host-scaled — open-loop at a 20us gap (~50 krps) against ~183 krps of
// 2-worker capacity. Deadlines at 10x clean service, exactly as the bench
// harness injects them.
constexpr double kQuantumUs = 5.0;
constexpr double kShortUs = 1.0;
constexpr double kLongUs = 100.0;
constexpr int kLongEvery = 10;
constexpr double kGapUs = 20.0;
constexpr double kShortDeadlineUs = 10.0;
constexpr double kLongDeadlineUs = 1000.0;

struct LiveResult {
  std::uint64_t completed = 0;
  double p99_slowdown = 0.0;
  double converged_quantum_us = kQuantumUs;  // adaptive-policy runs only
  telemetry::TelemetrySnapshot snapshot;
};

// Runs `request_count` requests of the bimodal mix through one live policy
// and returns its measured tail plus the post-run telemetry snapshot.
// concord-lint: allow-no-probe (test harness; drives the runtime from the main thread)
LiveResult RunLiveTrial(PolicyKind policy, int request_count, bool with_deadlines) {
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = kQuantumUs;
  options.jbsq_depth = 2;
  options.policy = policy;
  SlowdownTracker tracker;
  std::mutex mu;  // on_complete runs on the dispatcher thread
  std::uint64_t completed = 0;
  double tsc_ghz = 1.0;  // written once before the first Submit
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? kLongUs : kShortUs);
  };
  callbacks.on_complete = [&](const RequestView& view, std::uint64_t latency_tsc) {
    const double latency_ns = static_cast<double>(latency_tsc) / tsc_ghz;
    const double service_ns = (view.request_class == 1 ? kLongUs : kShortUs) * 1000.0;
    std::lock_guard<std::mutex> lock(mu);
    ++completed;
    tracker.Record(latency_ns, service_ns, view.request_class);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  tsc_ghz = runtime.tsc_ghz();
  // Open-loop pacing (same discipline as the model's generator): a fixed
  // inter-arrival gap so the percentiles measure scheduling, not run length.
  const double gap_ns = kGapUs * 1000.0;
  const auto pace_start = std::chrono::steady_clock::now();
  for (int i = 0; i < request_count; ++i) {
    const double due_ns = static_cast<double>(i) * gap_ns;
    for (;;) {
      const double elapsed_ns =
          std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - pace_start)
              .count();
      if (elapsed_ns >= due_ns) {
        break;
      }
      std::this_thread::yield();
    }
    const int request_class = (i % kLongEvery == kLongEvery - 1) ? 1 : 0;
    if (with_deadlines) {
      const double deadline_us = request_class == 1 ? kLongDeadlineUs : kShortDeadlineUs;
      while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr, deadline_us)) {
        std::this_thread::yield();
      }
    } else {
      while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr)) {
        std::this_thread::yield();
      }
    }
  }
  runtime.WaitIdle();
  LiveResult result;
  result.converged_quantum_us = runtime.current_quantum_us();
  result.snapshot = runtime.GetTelemetry();
  runtime.Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    result.completed = completed;
    result.p99_slowdown = tracker.QuantileSlowdown(0.99);
  }
  return result;
}

// The simulator preset that is each live policy's spec. The adaptive preset
// takes the live controller's converged quantum: the simulator models the
// steady state the controller settles into, not the transient.
SystemConfig SimPreset(PolicyKind policy, double converged_quantum_us) {
  switch (policy) {
    case PolicyKind::kFcfsNonPreemptive:
      return MakePersephoneFcfs(2);
    case PolicyKind::kSingleQueuePreemptive:
      return MakeShinjuku(2, UsToNs(kQuantumUs));
    case PolicyKind::kConcordJbsq:
      return MakeConcord(2, UsToNs(kQuantumUs));
    case PolicyKind::kEdfNonPreemptive:
      return MakeEdfNonPreemptive(2, {UsToNs(kShortDeadlineUs), UsToNs(kLongDeadlineUs)});
    case PolicyKind::kApproxSrpt:
      return MakeApproxSrpt(2);
    case PolicyKind::kConcordJbsqAdaptive:
      return MakeConcordAdaptive(2, UsToNs(converged_quantum_us));
    case PolicyKind::kSingleQueueUipi:
      return MakeUipiSystem(2, UsToNs(kQuantumUs));
  }
  return MakeConcord(2, UsToNs(kQuantumUs));
}

// Runs the matching simulator preset at the live section's offered load and
// returns its p99 slowdown.
double SimP99Slowdown(const SystemConfig& system) {
  const std::unique_ptr<DiscreteMixtureDistribution> distribution =
      MakeBimodal(90.0, kShortUs, 10.0, kLongUs);
  ExperimentParams params;
  params.request_count = 60000;
  params.seed = 42;
  const double offered_krps = 1000.0 / kGapUs;
  return RunLoadPoint(system, DefaultCosts(), *distribution, offered_krps, params).p99_slowdown;
}

std::uint64_t SlackHistogramSum(const telemetry::TelemetrySnapshot& snapshot) {
  return std::accumulate(snapshot.dispatcher.slack_histogram.begin(),
                         snapshot.dispatcher.slack_histogram.end(), std::uint64_t{0});
}

class PolicyCrossvalTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyCrossvalTest, LiveP99SlowdownTracksSimulatorPreset) {
  constexpr double kTolerance = 0.20;
  constexpr int kMaxTrials = 3;
  constexpr int kRequestCount = 4000;

  std::ostringstream attempts;
  for (int trial = 0; trial < kMaxTrials; ++trial) {
    const LiveResult live = RunLiveTrial(GetParam(), kRequestCount, /*with_deadlines=*/true);
    ASSERT_EQ(live.completed, static_cast<std::uint64_t>(kRequestCount))
        << "live run lost requests under " << PolicyKindName(GetParam());
    const double sim = SimP99Slowdown(SimPreset(GetParam(), live.converged_quantum_us));
    ASSERT_GT(sim, 0.0) << "simulator preset produced no samples";
    const double relative_error = std::abs(live.p99_slowdown - sim) / sim;
    attempts << "trial " << trial << ": live p99 slowdown " << live.p99_slowdown << " vs sim "
             << sim << " (error " << relative_error << "); ";
    if (relative_error <= kTolerance) {
      SUCCEED() << "live p99 slowdown " << live.p99_slowdown << " vs sim " << sim << " (error "
                << relative_error << ")";
      return;
    }
  }
  // A host that cannot schedule the dispatcher, two workers and the pacing
  // thread at microsecond granularity measures its own contention, not the
  // policy — skip, don't fail.
  GTEST_SKIP() << "no trial tracked the simulator preset within " << kTolerance * 100
               << "%: " << attempts.str() << "host too contended for live tail measurement";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyCrossvalTest,
    ::testing::Values(PolicyKind::kFcfsNonPreemptive, PolicyKind::kSingleQueuePreemptive,
                      PolicyKind::kConcordJbsq, PolicyKind::kEdfNonPreemptive,
                      PolicyKind::kApproxSrpt, PolicyKind::kConcordJbsqAdaptive,
                      PolicyKind::kSingleQueueUipi),
    [](const ::testing::TestParamInfo<PolicyKind>& param_info) {
      std::string name = PolicyKindName(param_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// EDF slack-histogram accounting identities (deterministic; count-based)
// ---------------------------------------------------------------------------

TEST(EdfSlackHistogramTest, BucketSumEqualsDeadlineCarryingDispatches) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out (CONCORD_TELEMETRY=OFF)";
  }
  // Every request carries a deadline and EDF dispatches each exactly once
  // (depth 1, no preemption), so once quiescent the bucket sum must equal
  // the number of completed requests — no dispatch unaccounted, none
  // double-counted.
  constexpr int kRequestCount = 600;
  const LiveResult live =
      RunLiveTrial(PolicyKind::kEdfNonPreemptive, kRequestCount, /*with_deadlines=*/true);
  ASSERT_EQ(live.completed, static_cast<std::uint64_t>(kRequestCount));
  EXPECT_EQ(SlackHistogramSum(live.snapshot), live.snapshot.RequestsCompleted());
  EXPECT_EQ(live.snapshot.RequestsCompleted(), static_cast<std::uint64_t>(kRequestCount));
}

TEST(EdfSlackHistogramTest, AllZeroWithoutDeadlines) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out (CONCORD_TELEMETRY=OFF)";
  }
  // Deadline-free submits must leave the histogram untouched even under the
  // EDF policy: the slack instrument keys on the request's deadline, not on
  // the policy selection.
  const LiveResult live =
      RunLiveTrial(PolicyKind::kEdfNonPreemptive, /*request_count=*/200, /*with_deadlines=*/false);
  ASSERT_EQ(live.completed, 200u);
  for (std::size_t i = 0; i < telemetry::kSlackBuckets; ++i) {
    EXPECT_EQ(live.snapshot.dispatcher.slack_histogram[i], 0u) << "bucket " << i;
  }
}

TEST(EdfSlackHistogramTest, SurvivesJsonRoundTrip) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out (CONCORD_TELEMETRY=OFF)";
  }
  // The additive concord.telemetry.v1 fields (slack_histogram,
  // quantum_retunes) must survive ToJson -> FromJson bit-for-bit.
  const LiveResult live =
      RunLiveTrial(PolicyKind::kEdfNonPreemptive, /*request_count=*/400, /*with_deadlines=*/true);
  ASSERT_GT(SlackHistogramSum(live.snapshot), 0u);
  telemetry::TelemetrySnapshot decoded;
  ASSERT_TRUE(telemetry::TelemetrySnapshot::FromJson(live.snapshot.ToJson(), &decoded));
  EXPECT_EQ(decoded.dispatcher.slack_histogram, live.snapshot.dispatcher.slack_histogram);
  EXPECT_EQ(decoded.dispatcher.quantum_retunes, live.snapshot.dispatcher.quantum_retunes);
}

// ---------------------------------------------------------------------------
// Adaptive-quantum controller bounds (deterministic; count-based)
// ---------------------------------------------------------------------------

TEST(AdaptiveQuantumCrossvalTest, ConvergedQuantumStaysInsideControllerClamp) {
  // Whatever the controller did under this host's load, the quantum it
  // settled on must respect the configured clamp — the property the
  // MakeConcordAdaptive preset's "converged quantum" handoff relies on.
  const LiveResult live =
      RunLiveTrial(PolicyKind::kConcordJbsqAdaptive, /*request_count=*/1500,
                   /*with_deadlines=*/true);
  ASSERT_EQ(live.completed, 1500u);
  const double span = 4.0;  // Options::adaptive_span default
  EXPECT_GE(live.converged_quantum_us, kQuantumUs / span * 0.99);
  EXPECT_LE(live.converged_quantum_us, kQuantumUs * span * 1.01);
}

TEST(AdaptiveQuantumCrossvalTest, NonAdaptivePoliciesNeverRetune) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out (CONCORD_TELEMETRY=OFF)";
  }
  const LiveResult live =
      RunLiveTrial(PolicyKind::kConcordJbsq, /*request_count=*/300, /*with_deadlines=*/true);
  ASSERT_EQ(live.completed, 300u);
  EXPECT_EQ(live.snapshot.dispatcher.quantum_retunes, 0u);
  // TSC round-trip (us -> cycles -> us) truncates; exactness is not the point.
  EXPECT_NEAR(live.converged_quantum_us, kQuantumUs, kQuantumUs * 0.01);
}

}  // namespace
}  // namespace concord
