// Tests for the discrete-event engine: ordering, ties, cancellation, bounds.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace concord {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30.0, [&] { order.push_back(3); });
  sim.ScheduleAt(10.0, [&] { order.push_back(1); });
  sim.ScheduleAt(20.0, [&] { order.push_back(2); });
  sim.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.NowNs(), 30.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunUntil();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(100.0, [&] {
    sim.ScheduleAfter(50.0, [&] { fired_at = sim.NowNs(); });
  });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.RunUntil();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.ScheduleAt(20.0, [&] { fired = true; });
  sim.ScheduleAt(10.0, [&] { sim.Cancel(victim); });
  sim.RunUntil();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilRespectsBound) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(static_cast<double>(i) * 10.0, [&] { ++count; });
  }
  sim.RunUntil(45.0);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.pending_events(), 6u);
  sim.RunUntil();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(1.0, [&] { ++count; });
  sim.ScheduleAt(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) {
      sim.ScheduleAfter(1.0, chain);
    }
  };
  sim.ScheduleAt(0.0, chain);
  sim.RunUntil();
  EXPECT_EQ(depth, 1000);
  EXPECT_DOUBLE_EQ(sim.NowNs(), 999.0);
}

TEST(SimulatorTest, ZeroDelayFiresInOrderAfterCurrent) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10.0, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0.0, [&] { order.push_back(2); });
  });
  sim.ScheduleAt(10.0, [&] { order.push_back(3); });
  sim.RunUntil();
  // The same-time event scheduled earlier (3) runs before the zero-delay
  // event scheduled later (2): insertion order breaks the tie.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool ordered = true;
  for (int i = 0; i < 50000; ++i) {
    const double t = static_cast<double>((i * 7919) % 10007);
    sim.ScheduleAt(t, [&, t] {
      if (t < last) {
        ordered = false;
      }
      last = t;
    });
  }
  sim.RunUntil();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.executed_events(), 50000u);
}

}  // namespace
}  // namespace concord
