// Tests for the server model: conservation laws, queueing-theory sanity
// checks, the behaviour of each Concord mechanism, and determinism.

#include <gtest/gtest.h>

#include "src/common/cycles.h"
#include "src/model/costs.h"
#include "src/model/experiment.h"
#include "src/model/overhead_model.h"
#include "src/model/server_model.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

constexpr std::size_t kSmallRun = 20000;

TEST(ServerModelTest, CompletesEveryRequest) {
  FixedDistribution dist(UsToNs(1.0));
  ServerModel model(MakePersephoneFcfs(4), DefaultCosts(), /*seed=*/1);
  const RunResult result = model.Run(dist, /*krps=*/500.0, kSmallRun);
  EXPECT_EQ(result.completed, kSmallRun);
  EXPECT_EQ(result.measured, kSmallRun - kSmallRun / 10);  // 10% warmup dropped
}

TEST(ServerModelTest, LowLoadSlowdownNearOne) {
  // At 1% load with idealized costs, requests almost never queue, so the
  // slowdown should be ~1.
  FixedDistribution dist(UsToNs(10.0));
  SystemConfig config = MakePersephoneFcfs(4);
  ServerModel model(config, IdealizedCosts(), 2);
  const RunResult result = model.Run(dist, /*krps=*/4.0, kSmallRun);
  EXPECT_LT(result.slowdown.QuantileSlowdown(0.5), 1.01);
  EXPECT_LT(result.slowdown.P999Slowdown(), 1.5);
}

TEST(ServerModelTest, SlowdownGrowsWithLoad) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  SystemConfig config = MakePersephoneFcfs(8);
  ServerModel model(config, DefaultCosts(), 3);
  // Capacity ~ 8 / 50.5us = 158 kRps.
  const RunResult low = model.Run(*spec.distribution, 30.0, kSmallRun);
  const RunResult high = model.Run(*spec.distribution, 140.0, kSmallRun);
  EXPECT_GT(high.slowdown.P999Slowdown(), low.slowdown.P999Slowdown());
}

TEST(ServerModelTest, DeterministicForSameSeed) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  SystemConfig config = MakeConcord(8, UsToNs(5.0));
  ServerModel a(config, DefaultCosts(), 77);
  ServerModel b(config, DefaultCosts(), 77);
  const RunResult ra = a.Run(*spec.distribution, 400.0, kSmallRun);
  const RunResult rb = b.Run(*spec.distribution, 400.0, kSmallRun);
  EXPECT_DOUBLE_EQ(ra.slowdown.P999Slowdown(), rb.slowdown.P999Slowdown());
  EXPECT_EQ(ra.preemptions, rb.preemptions);
  EXPECT_DOUBLE_EQ(ra.sim_duration_ns, rb.sim_duration_ns);
}

TEST(ServerModelTest, DifferentSeedsDifferSlightly) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  SystemConfig config = MakeConcord(8, UsToNs(5.0));
  ServerModel a(config, DefaultCosts(), 1);
  ServerModel b(config, DefaultCosts(), 2);
  const RunResult ra = a.Run(*spec.distribution, 400.0, kSmallRun);
  const RunResult rb = b.Run(*spec.distribution, 400.0, kSmallRun);
  EXPECT_NE(ra.sim_duration_ns, rb.sim_duration_ns);
}

TEST(ServerModelTest, NoPreemptionsWhenRequestsShorterThanQuantum) {
  FixedDistribution dist(UsToNs(1.0));  // 1us requests, 5us quantum
  ServerModel model(MakeConcord(4, UsToNs(5.0)), DefaultCosts(), 4);
  const RunResult result = model.Run(dist, 300.0, kSmallRun);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(ServerModelTest, LongRequestsArePreempted) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ServerModel model(MakeShinjuku(8, UsToNs(5.0)), DefaultCosts(), 5);
  // Moderate load so the queue is frequently non-empty.
  const RunResult result = model.Run(*spec.distribution, 100.0, kSmallRun);
  EXPECT_GT(result.preemptions, kSmallRun / 4);  // ~half the requests are 100us
}

TEST(ServerModelTest, PreemptionImprovesHeavyTailedP999) {
  // The core queueing-theory claim: with 99.5% short / 0.5% very long
  // requests, preemptive scheduling massively improves the short requests'
  // tail slowdown versus FCFS at moderate load. Idealized costs isolate the
  // policy effect.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  SystemConfig fcfs = MakePersephoneFcfs(8);
  SystemConfig preemptive = MakeShinjuku(8, UsToNs(5.0));
  preemptive.preempt_delay_sigma_ns = 0.0;
  ServerModel model_fcfs(fcfs, IdealizedCosts(), 6);
  ServerModel model_preempt(preemptive, IdealizedCosts(), 6);
  // Mean service = 2.9975us; capacity on 8 idealized workers ~ 2669 kRps.
  const double load = 1600.0;  // ~60% utilization
  const std::size_t count = 60000;
  const double p999_fcfs =
      model_fcfs.Run(*spec.distribution, load, count).slowdown.P999Slowdown();
  const double p999_preempt =
      model_preempt.Run(*spec.distribution, load, count).slowdown.P999Slowdown();
  EXPECT_LT(p999_preempt, p999_fcfs / 2.0);
}

TEST(ServerModelTest, JbsqCutsWorkerWaitVersusSingleQueue) {
  // Fig. 3's mechanism: with a backlogged queue and short requests,
  // single-queue workers idle on the dispatcher handshake; JBSQ(2) workers
  // do not. The Fig. 3 experiment pre-loads the queue, so ingress costs are
  // zeroed and the offered load is far beyond capacity.
  FixedDistribution dist(UsToNs(1.0));
  SystemConfig sq = MakePersephoneFcfs(8);
  SystemConfig jbsq = MakeConcordNoDispatcherWork(8, UsToNs(100.0));
  CostModel costs = DefaultCosts();
  costs.networker_ns = 0.0;
  costs.dispatch_arrival_ns = 0.0;
  ServerModel model_sq(sq, costs, 7);
  ServerModel model_jbsq(jbsq, costs, 7);
  const double load = 9000.0;  // far beyond capacity: saturated
  const RunResult r_sq = model_sq.Run(dist, load, kSmallRun);
  const RunResult r_jbsq = model_jbsq.Run(dist, load, kSmallRun);
  EXPECT_GT(r_sq.median_worker_wait_fraction, 0.10);
  EXPECT_LT(r_jbsq.median_worker_wait_fraction, r_sq.median_worker_wait_fraction / 3.0);
}

TEST(ServerModelTest, JbsqDepthNeverExceeded) {
  // Indirect invariant check: with depth k and n workers, at most n*k
  // requests can be outside the central queue, so a saturated JBSQ system's
  // achieved throughput still matches completions (conservation), and the
  // run must drain. A violated bound would deadlock or crash the model.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  for (int depth : {1, 2, 4}) {
    SystemConfig config = MakeConcordNoDispatcherWork(4, UsToNs(5.0), depth);
    ServerModel model(config, DefaultCosts(), 8);
    const RunResult result = model.Run(*spec.distribution, 60.0, kSmallRun / 2);
    EXPECT_EQ(result.completed, kSmallRun / 2) << "depth=" << depth;
  }
}

TEST(ServerModelTest, WorkConservingDispatcherStealsUnderPressure) {
  // 2 workers + tiny JBSQ depth + heavy load => all queues full often, so the
  // dispatcher must pick up requests (§3.3).
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  SystemConfig config = MakeConcord(2, UsToNs(5.0));
  ServerModel model(config, DefaultCosts(), 9);
  // 2 workers at mean 250.3us -> capacity ~8 kRps; run at ~75%.
  const RunResult result = model.Run(*spec.distribution, 6.0, kSmallRun / 2);
  EXPECT_GT(result.dispatcher_stolen, 0u);
  EXPECT_EQ(result.dispatcher_stolen, result.dispatcher_completed);
  EXPECT_GT(result.dispatcher_app_fraction, 0.01);
}

TEST(ServerModelTest, DispatcherWorkImprovesTailAtSmallCoreCount) {
  // Fig. 13's mechanism: with 2 workers near saturation, letting the mostly
  // idle dispatcher run requests lowers the tail slowdown at a given load.
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  SystemConfig with = MakeConcord(2, UsToNs(5.0));
  SystemConfig without = MakeConcordNoDispatcherWork(2, UsToNs(5.0));
  ServerModel model_with(with, DefaultCosts(), 15);
  ServerModel model_without(without, DefaultCosts(), 15);
  const double load = 7.2;  // ~90% of the 2-worker capacity (~8 kRps)
  const double p999_with =
      model_with.Run(*spec.distribution, load, kSmallRun).slowdown.P999Slowdown();
  const double p999_without =
      model_without.Run(*spec.distribution, load, kSmallRun).slowdown.P999Slowdown();
  EXPECT_LT(p999_with, p999_without);
}

TEST(ServerModelTest, NoStealingWhenDisabled) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  SystemConfig config = MakeConcordNoDispatcherWork(2, UsToNs(5.0));
  ServerModel model(config, DefaultCosts(), 10);
  const RunResult result = model.Run(*spec.distribution, 6.0, kSmallRun / 2);
  EXPECT_EQ(result.dispatcher_stolen, 0u);
  EXPECT_DOUBLE_EQ(result.dispatcher_app_fraction, 0.0);
}

TEST(ServerModelTest, SrptBeatsFcfsMeanSlowdownForBimodal) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  SystemConfig fcfs = MakePersephoneFcfs(4);
  SystemConfig srpt = MakePersephoneFcfs(4);
  srpt.central_policy = CentralQueuePolicy::kSrpt;
  ServerModel model_fcfs(fcfs, IdealizedCosts(), 11);
  ServerModel model_srpt(srpt, IdealizedCosts(), 11);
  const double load = 65.0;  // ~80% of 4-worker capacity (79 kRps)
  const double mean_fcfs =
      model_fcfs.Run(*spec.distribution, load, kSmallRun).slowdown.MeanSlowdown();
  const double mean_srpt =
      model_srpt.Run(*spec.distribution, load, kSmallRun).slowdown.MeanSlowdown();
  EXPECT_LT(mean_srpt, mean_fcfs);
}

TEST(ServerModelTest, LockDeferralDelaysButDoesNotBreak) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  SystemConfig config = MakeConcord(4, UsToNs(5.0));
  config.locks.hold_probability = 0.3;
  config.locks.mean_remaining_ns = UsToNs(2.0);
  ServerModel model(config, DefaultCosts(), 12);
  const RunResult result = model.Run(*spec.distribution, 50.0, kSmallRun);
  EXPECT_EQ(result.completed, kSmallRun);
  EXPECT_GT(result.preemptions, 0u);
}

TEST(ServerModelTest, TraceReplayMatchesGeneratedLoad) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kTpcc);
  PoissonArrivals arrivals(KrpsToInterarrivalNs(300.0));
  Rng rng(13);
  const Trace trace = GenerateTrace(*spec.distribution, arrivals, kSmallRun, rng);
  ServerModel model(MakePersephoneFcfs(8), DefaultCosts(), 14);
  const RunResult result = model.RunTrace(trace);
  EXPECT_EQ(result.completed, kSmallRun);
  EXPECT_NEAR(result.offered_krps, 300.0, 10.0);
}

// --- Analytic overhead model (Eqs. 1-4) ---

TEST(OverheadModelTest, IpiMatchesPaperArithmetic) {
  // §2.2.1: ~12% overhead at q=5us and ~30% at q=2us for a ~600ns IPI.
  const CostModel costs = DefaultCosts();
  const auto at5 = PreemptionOverhead(costs, PreemptMechanism::kIpi,
                                      QueueDiscipline::kSingleQueue, UsToNs(5.0), UsToNs(500.0),
                                      /*include_switch_and_fetch=*/false);
  EXPECT_NEAR(at5.total, 0.12, 0.01);
  const auto at2 = PreemptionOverhead(costs, PreemptMechanism::kIpi,
                                      QueueDiscipline::kSingleQueue, UsToNs(2.0), UsToNs(500.0),
                                      false);
  EXPECT_NEAR(at2.total, 0.30, 0.01);
}

TEST(OverheadModelTest, RdtscIsFlatAcrossQuanta) {
  const CostModel costs = DefaultCosts();
  const auto at1 = PreemptionOverhead(costs, PreemptMechanism::kRdtscSelf,
                                      QueueDiscipline::kSingleQueue, UsToNs(1.0), UsToNs(500.0),
                                      false);
  const auto at100 = PreemptionOverhead(costs, PreemptMechanism::kRdtscSelf,
                                        QueueDiscipline::kSingleQueue, UsToNs(100.0),
                                        UsToNs(500.0), false);
  EXPECT_NEAR(at1.total, 0.21, 0.01);
  EXPECT_NEAR(at100.total, 0.21, 0.01);
}

TEST(OverheadModelTest, CoopIsNearOnePercent) {
  const CostModel costs = DefaultCosts();
  const auto at5 = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                      QueueDiscipline::kJbsq, UsToNs(5.0), UsToNs(500.0), false);
  EXPECT_LT(at5.total, 0.03);
  EXPECT_GT(at5.total, 0.005);
}

TEST(OverheadModelTest, CoopBeatsIpiAtSmallQuanta) {
  const CostModel costs = DefaultCosts();
  for (double q_us : {1.0, 2.0, 5.0, 10.0}) {
    const double ipi = PreemptionOverhead(costs, PreemptMechanism::kIpi,
                                          QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                          UsToNs(500.0), false)
                           .total;
    const double coop = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                           QueueDiscipline::kJbsq, UsToNs(q_us), UsToNs(500.0),
                                           false)
                            .total;
    EXPECT_LT(coop, ipi) << "q=" << q_us;
  }
}

TEST(OverheadModelTest, UipiBetweenIpiAndCoop) {
  const CostModel costs = DefaultCosts();
  for (double q_us : {1.0, 2.0, 5.0}) {
    const double ipi = PreemptionOverhead(costs, PreemptMechanism::kIpi,
                                          QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                          UsToNs(500.0), false)
                           .total;
    const double uipi = PreemptionOverhead(costs, PreemptMechanism::kUipi,
                                           QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                           UsToNs(500.0), false)
                            .total;
    const double coop = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                           QueueDiscipline::kJbsq, UsToNs(q_us), UsToNs(500.0),
                                           false)
                            .total;
    EXPECT_LT(uipi, ipi) << "q=" << q_us;
    EXPECT_GT(uipi, coop) << "q=" << q_us;
  }
}

TEST(OverheadModelTest, JbsqShrinksNextRequestComponent) {
  const CostModel costs = DefaultCosts();
  const auto sq = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                     QueueDiscipline::kSingleQueue, UsToNs(5.0), UsToNs(500.0),
                                     /*include_switch_and_fetch=*/true);
  const auto jbsq = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                       QueueDiscipline::kJbsq, UsToNs(5.0), UsToNs(500.0), true);
  EXPECT_GT(sq.next_request, jbsq.next_request * 4.0);
  EXPECT_LT(jbsq.total, sq.total);
}

TEST(OverheadModelTest, SystemOverheadFormula) {
  // Eq. 1 with a dedicated dispatcher (overhead 1) and 4 workers at 10%:
  // (4*0.1 + 1) / 5 = 0.28.
  EXPECT_DOUBLE_EQ(SystemOverhead(0.1, 4), 0.28);
  // A perfectly work-conserving dispatcher with no overhead:
  EXPECT_DOUBLE_EQ(SystemOverhead(0.1, 4, 0.1), 0.1);
}

// --- experiment harness ---

TEST(ExperimentTest, LinearLoadsEndpoints) {
  const auto loads = LinearLoads(10.0, 50.0, 5);
  ASSERT_EQ(loads.size(), 5u);
  EXPECT_DOUBLE_EQ(loads.front(), 10.0);
  EXPECT_DOUBLE_EQ(loads.back(), 50.0);
  EXPECT_DOUBLE_EQ(loads[2], 30.0);
}

TEST(ExperimentTest, SweepProducesMonotonicTailAtHighLoads) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
  ExperimentParams params;
  params.request_count = kSmallRun;
  const auto points = RunLoadSweep(MakePersephoneFcfs(4), DefaultCosts(), *spec.distribution,
                                   {500.0, 3000.0, 3800.0}, params);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].p999_slowdown, points[2].p999_slowdown);
}

TEST(ExperimentTest, SloCrossoverIsBracketed) {
  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  ExperimentParams params;
  params.request_count = kSmallRun;
  const SystemConfig config = MakePersephoneFcfs(8);
  const CostModel costs = DefaultCosts();
  const double max_load = FindMaxLoadUnderSlo(config, costs, *spec.distribution,
                                              kPaperSloSlowdown, 5.0, 160.0, params, 0.05);
  EXPECT_GT(max_load, 5.0);
  EXPECT_LT(max_load, 160.0);
  // The found load meets the SLO...
  EXPECT_LE(RunLoadPoint(config, costs, *spec.distribution, max_load, params).p999_slowdown,
            kPaperSloSlowdown * 1.2);
}

}  // namespace
}  // namespace concord
