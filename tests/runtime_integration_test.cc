// Integration tests driving the real runtime with the real kvstore and the
// load generator: the full §5.3 stack on actual threads.
//
// These run on hosts of any core count (including CI's single CPU), so they
// assert functional behaviour — completion, correctness, lock safety,
// preemption occurrence under forced conditions — not timing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "src/common/cycles.h"
#include "src/kvstore/db.h"
#include "src/loadgen/loadgen.h"
#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/workload/distribution.h"

namespace concord {
namespace {

TEST(RuntimeKvIntegrationTest, MixedWorkloadCompletesAndStaysConsistent) {
  Db db;
  constexpr int kKeys = 2000;
  std::atomic<std::uint64_t> scan_pairs{0};
  std::atomic<int> gets{0};
  std::atomic<int> puts{0};
  std::atomic<int> scans{0};

  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = true;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, kKeys, 32); };
  callbacks.handle_request = [&](const RequestView& view) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(view.id % kKeys));
    switch (view.request_class) {
      case 0: {  // GET
        std::string value;
        EXPECT_TRUE(db.Get(Slice(key), &value));
        gets.fetch_add(1);
        break;
      }
      case 1:  // PUT (overwrite keeps live count stable)
        db.Put(Slice(key), Slice("new-value"));
        puts.fetch_add(1);
        break;
      default:  // SCAN
        scan_pairs.fetch_add(db.ScanCount());
        scans.fetch_add(1);
        break;
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  Rng rng(9);
  for (std::uint64_t i = 0; i < 600; ++i) {
    const double u = rng.NextDouble();
    const int cls = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
    while (!runtime.Submit(i, cls, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  EXPECT_EQ(gets.load() + puts.load() + scans.load(), 600);
  // Every scan saw exactly the full key set (overwrites never change count).
  EXPECT_EQ(scan_pairs.load(),
            static_cast<std::uint64_t>(scans.load()) * static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(db.ScanCount(), static_cast<std::uint64_t>(kKeys));
}

TEST(RuntimeKvIntegrationTest, ScansArePreemptedAtIteratorGranularity) {
  // One worker, tiny quantum: a full scan (2000 probes) must yield while
  // short GETs are queued behind it.
  Db db;
  constexpr int kKeys = 5000;
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 0.05;
  options.work_conserving_dispatcher = false;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, kKeys, 32); };
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      // Repeated scans: several milliseconds of probed loop work, long
      // enough that on a single-CPU host the OS schedules the dispatcher
      // thread at least once while the scan runs.
      for (int i = 0; i < 100; ++i) {
        db.ScanCount();
      }
    } else {
      std::string value;
      db.Get("key00000001", &value);
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  runtime.Submit(0, 1, nullptr);  // the scan
  for (std::uint64_t i = 1; i <= 30; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_GT(runtime.GetStats().preemptions, 0u);
}

TEST(RuntimeKvIntegrationTest, ConcurrentReadersDuringWrites) {
  // The memtable supports lock-free reads concurrent with a serialized
  // writer: hammer Get from one thread while another Puts.
  Db db;
  PopulateDb(&db, 500, 16);
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::thread reader([&] {
    Rng rng(10);
    std::string value;
    while (!stop.load()) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(500)));
      if (!db.Get(Slice(key), &value)) {
        read_errors.fetch_add(1);
      }
    }
  });
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 500; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%08d", i);
      db.Put(Slice(key), Slice("updated"));
    }
  }
  stop.store(true);
  reader.join();
  // Keys are only overwritten, never deleted: every read must succeed.
  EXPECT_EQ(read_errors.load(), 0);
}

TEST(RuntimeKvIntegrationTest, LoadgenAgainstKvStore) {
  Db db;
  DiscreteMixtureDistribution workload({
      {"GET", 0.9, UsToNs(1.0)},
      {"SCAN", 0.1, UsToNs(50.0)},
  });
  OpenLoopLoadgen loadgen(workload, {1.0, 50.0}, /*seed=*/11);
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, 1000, 16); };
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 0) {
      std::string value;
      db.Get("key00000042", &value);
    } else {
      db.ScanCount();
    }
  };
  callbacks.on_complete = loadgen.CompletionHook();
  Runtime runtime(options, callbacks);
  runtime.Start();
  const LoadgenReport report = loadgen.Run(&runtime, 1.0, 200);
  runtime.Shutdown();
  EXPECT_EQ(report.completed, 200u);
  EXPECT_GE(report.p50_slowdown, 1.0);
}

TEST(RuntimeIntegrationTest, ClosedLoopResubmissionFromCompletionHook) {
  // on_complete runs on the dispatcher thread; resubmitting from it must not
  // deadlock (exercises the Submit locking from inside the runtime).
  std::atomic<std::uint64_t> chain{0};
  Runtime* runtime_ptr = nullptr;
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(1.0); };
  callbacks.on_complete = [&](const RequestView& view, std::uint64_t) {
    if (view.id < 200) {
      chain.fetch_add(1);
      ASSERT_TRUE(runtime_ptr->Submit(view.id + 1, 0, nullptr));
    }
  };
  Runtime runtime(options, callbacks);
  runtime_ptr = &runtime;
  runtime.Start();
  runtime.Submit(0, 0, nullptr);
  while (chain.load() < 200) {
    std::this_thread::yield();
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(runtime.GetStats().completed, 201u);
}

TEST(RuntimeIntegrationTest, RepeatedStartShutdownCycles) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::atomic<int> handled{0};
    Runtime::Options options;
    options.worker_count = 2;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
    Runtime runtime(options, callbacks);
    runtime.Start();
    for (std::uint64_t i = 0; i < 50; ++i) {
      while (!runtime.Submit(i, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    runtime.Shutdown();
    EXPECT_EQ(handled.load(), 50);
  }
}

}  // namespace
}  // namespace concord
