// Integration tests driving the real runtime with the real kvstore and the
// load generator: the full §5.3 stack on actual threads.
//
// These run on hosts of any core count (including CI's single CPU), so they
// assert functional behaviour — completion, correctness, lock safety,
// preemption occurrence under forced conditions — not timing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "src/common/cycles.h"
#include "src/kvstore/db.h"
#include "src/loadgen/loadgen.h"
#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/distribution.h"

namespace concord {
namespace {

TEST(RuntimeKvIntegrationTest, MixedWorkloadCompletesAndStaysConsistent) {
  Db db;
  constexpr int kKeys = 2000;
  std::atomic<std::uint64_t> scan_pairs{0};
  std::atomic<int> gets{0};
  std::atomic<int> puts{0};
  std::atomic<int> scans{0};

  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = true;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, kKeys, 32); };
  callbacks.handle_request = [&](const RequestView& view) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(view.id % kKeys));
    switch (view.request_class) {
      case 0: {  // GET
        std::string value;
        EXPECT_TRUE(db.Get(Slice(key), &value));
        gets.fetch_add(1);
        break;
      }
      case 1:  // PUT (overwrite keeps live count stable)
        db.Put(Slice(key), Slice("new-value"));
        puts.fetch_add(1);
        break;
      default:  // SCAN
        scan_pairs.fetch_add(db.ScanCount());
        scans.fetch_add(1);
        break;
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  Rng rng(9);
  for (std::uint64_t i = 0; i < 600; ++i) {
    const double u = rng.NextDouble();
    const int cls = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
    while (!runtime.Submit(i, cls, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();

  EXPECT_EQ(gets.load() + puts.load() + scans.load(), 600);
  // Every scan saw exactly the full key set (overwrites never change count).
  EXPECT_EQ(scan_pairs.load(),
            static_cast<std::uint64_t>(scans.load()) * static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(db.ScanCount(), static_cast<std::uint64_t>(kKeys));
}

TEST(RuntimeKvIntegrationTest, ScansArePreemptedAtIteratorGranularity) {
  // One worker, tiny quantum: a full scan (2000 probes) must yield while
  // short GETs are queued behind it.
  Db db;
  constexpr int kKeys = 5000;
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 0.05;
  options.work_conserving_dispatcher = false;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, kKeys, 32); };
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 1) {
      // Repeated scans: several milliseconds of probed loop work, long
      // enough that on a single-CPU host the OS schedules the dispatcher
      // thread at least once while the scan runs.
      for (int i = 0; i < 100; ++i) {
        db.ScanCount();
      }
    } else {
      std::string value;
      db.Get("key00000001", &value);
    }
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  runtime.Submit(0, 1, nullptr);  // the scan
  for (std::uint64_t i = 1; i <= 30; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_GT(runtime.GetStats().preemptions, 0u);
}

TEST(RuntimeKvIntegrationTest, ConcurrentReadersDuringWrites) {
  // The memtable supports lock-free reads concurrent with a serialized
  // writer: hammer Get from one thread while another Puts.
  Db db;
  PopulateDb(&db, 500, 16);
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::thread reader([&] {
    Rng rng(10);
    std::string value;
    while (!stop.load()) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(500)));
      if (!db.Get(Slice(key), &value)) {
        read_errors.fetch_add(1);
      }
    }
  });
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 500; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%08d", i);
      db.Put(Slice(key), Slice("updated"));
    }
  }
  stop.store(true);
  reader.join();
  // Keys are only overwritten, never deleted: every read must succeed.
  EXPECT_EQ(read_errors.load(), 0);
}

TEST(RuntimeKvIntegrationTest, LoadgenAgainstKvStore) {
  Db db;
  DiscreteMixtureDistribution workload({
      {"GET", 0.9, UsToNs(1.0)},
      {"SCAN", 0.1, UsToNs(50.0)},
  });
  OpenLoopLoadgen loadgen(workload, {1.0, 50.0}, /*seed=*/11);
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.setup = [&db] { PopulateDb(&db, 1000, 16); };
  callbacks.handle_request = [&](const RequestView& view) {
    if (view.request_class == 0) {
      std::string value;
      db.Get("key00000042", &value);
    } else {
      db.ScanCount();
    }
  };
  callbacks.on_complete = loadgen.CompletionHook();
  Runtime runtime(options, callbacks);
  runtime.Start();
  const LoadgenReport report = loadgen.Run(&runtime, 1.0, 200);
  runtime.Shutdown();
  EXPECT_EQ(report.completed, 200u);
  EXPECT_GE(report.p50_slowdown, 1.0);
}

TEST(RuntimeIntegrationTest, ClosedLoopResubmissionFromCompletionHook) {
  // on_complete runs on the dispatcher thread; resubmitting from it must not
  // deadlock (exercises the Submit locking from inside the runtime).
  std::atomic<std::uint64_t> chain{0};
  Runtime* runtime_ptr = nullptr;
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 100.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(1.0); };
  callbacks.on_complete = [&](const RequestView& view, std::uint64_t) {
    if (view.id < 200) {
      chain.fetch_add(1);
      ASSERT_TRUE(runtime_ptr->Submit(view.id + 1, 0, nullptr));
    }
  };
  Runtime runtime(options, callbacks);
  runtime_ptr = &runtime;
  runtime.Start();
  runtime.Submit(0, 0, nullptr);
  while (chain.load() < 200) {
    std::this_thread::yield();
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  EXPECT_EQ(runtime.GetStats().completed, 201u);
}

TEST(RuntimeIntegrationTest, RepeatedStartShutdownCycles) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::atomic<int> handled{0};
    Runtime::Options options;
    options.worker_count = 2;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [&](const RequestView&) { handled.fetch_add(1); };
    Runtime runtime(options, callbacks);
    runtime.Start();
    for (std::uint64_t i = 0; i < 50; ++i) {
      while (!runtime.Submit(i, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    runtime.Shutdown();
    EXPECT_EQ(handled.load(), 50);
  }
}

// ---------------------------------------------------------------------------
// Mechanism-level invariants via the telemetry layer (docs/telemetry.md).
// Each test states a property the scheduling mechanism must uphold by
// construction — not a timing expectation — so they hold on any host.
// ---------------------------------------------------------------------------

TEST(RuntimeMechanismInvariantTest, LifecycleTimestampsAreMonotone) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // A request cannot be dispatched before it arrives, run before it is
  // dispatched, be preempted before it first runs, or finish before its
  // last preemption. Long probed requests with short ones queued behind
  // them get preempted (segments outlast an OS timeslice, so the dispatcher
  // observes quantum expiry even on a one-CPU host), exercising the
  // preemption stamps as well as the basic ordering.
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = false;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 10000.0 : 1.0);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 33; ++i) {
    while (!runtime.Submit(i, i < 3 ? 1 : 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  ASSERT_EQ(snapshot.lifecycles.size(), 33u);
  for (const telemetry::RequestLifecycle& lifecycle : snapshot.lifecycles) {
    EXPECT_LE(lifecycle.arrival_tsc, lifecycle.dispatch_tsc);
    EXPECT_LE(lifecycle.dispatch_tsc, lifecycle.first_run_tsc);
    EXPECT_LE(lifecycle.first_run_tsc, lifecycle.finish_tsc);
    const int recorded = std::min(lifecycle.preemptions,
                                  telemetry::kMaxRecordedPreemptions);
    std::uint64_t prev = lifecycle.first_run_tsc;
    for (int i = 0; i < recorded; ++i) {
      // Preemption stamps lie inside the request's run window, in order.
      EXPECT_GT(lifecycle.preempt_tsc[i], lifecycle.first_run_tsc);
      EXPECT_LE(lifecycle.preempt_tsc[i], lifecycle.finish_tsc);
      EXPECT_GE(lifecycle.preempt_tsc[i], prev);
      prev = lifecycle.preempt_tsc[i];
    }
  }
}

TEST(RuntimeMechanismInvariantTest, PreemptionsHonoredNeverExceedRequested) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // A worker can only yield in response to a signal the dispatcher sent:
  // honored <= requested always, and the forced-preemption setup below
  // (multi-millisecond probed spins with work queued behind them, as in the
  // scan-preemption test above) must actually produce some honored
  // preemptions for the bound to be exercised.
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = false;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 10000.0 : 1.0);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 33; ++i) {
    while (!runtime.Submit(i, i < 3 ? 1 : 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  EXPECT_GT(snapshot.PreemptionsHonored(), 0u);
  EXPECT_LE(snapshot.PreemptionsHonored(), snapshot.PreemptionsRequested());
}

TEST(RuntimeMechanismInvariantTest, JbsqOccupancyNeverExceedsDepth) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // JBSQ(k): the dispatcher never queues more than k requests at a worker.
  // max_inflight is a dispatcher-maintained high-water mark of per-worker
  // outstanding requests, so the bound is exact, not sampled.
  for (const int depth : {1, 2, 4}) {
    Runtime::Options options;
    options.worker_count = 2;
    options.jbsq_depth = depth;
    options.quantum_us = 1000.0;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(2.0); };
    Runtime runtime(options, callbacks);
    runtime.Start();
    for (std::uint64_t i = 0; i < 200; ++i) {
      while (!runtime.Submit(i, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    runtime.Shutdown();
    const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
    for (const telemetry::WorkerSnapshot& worker : snapshot.workers) {
      EXPECT_LE(worker.max_inflight, static_cast<std::uint64_t>(depth))
          << "jbsq_depth=" << depth;
    }
  }
}

TEST(RuntimeMechanismInvariantTest, DispatcherPinnedRequestsCompleteOnDispatcher) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // §3.3: a request the work-conserving dispatcher adopts is pinned — it must
  // finish on the dispatcher, never migrate to a worker. Force adoption with
  // one worker, depth 1 and a burst of spins so the inbox is full while the
  // central queue holds un-started work.
  Runtime::Options options;
  options.worker_count = 1;
  options.jbsq_depth = 1;
  options.quantum_us = 50.0;
  options.work_conserving_dispatcher = true;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) { SpinWithProbesUs(100.0); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  for (std::uint64_t i = 0; i < 60; ++i) {
    while (!runtime.Submit(i, 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  // Quiescent: everything the dispatcher started, it finished.
  EXPECT_EQ(snapshot.dispatcher.requests_started, snapshot.dispatcher.requests_completed);
  std::uint64_t pinned_seen = 0;
  for (const telemetry::RequestLifecycle& lifecycle : snapshot.lifecycles) {
    if (lifecycle.first_worker == telemetry::kDispatcherWorkerId) {
      EXPECT_EQ(lifecycle.completion_worker, telemetry::kDispatcherWorkerId)
          << "request " << lifecycle.id << " escaped the dispatcher";
      ++pinned_seen;
    }
  }
  EXPECT_EQ(pinned_seen, snapshot.dispatcher.requests_completed);
  // Telemetry and Stats views of dispatcher adoption agree.
  EXPECT_EQ(snapshot.dispatcher.requests_completed,
            runtime.GetStats().dispatcher_completed);
}

TEST(RuntimeMechanismInvariantTest, CompletionsSumMatchesLoadgenAcrossSeeds) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  // Property over randomized workloads: for every seed, per-worker completion
  // counters plus dispatcher completions sum to exactly the loadgen's
  // successfully issued count. No request is lost or double-counted.
  for (const std::uint64_t seed : {3u, 17u, 202u}) {
    DiscreteMixtureDistribution workload({
        {"SHORT", 0.8, UsToNs(1.0)},
        {"LONG", 0.2, UsToNs(20.0)},
    });
    OpenLoopLoadgen loadgen(workload, {1.0, 20.0}, seed);
    Runtime::Options options;
    options.worker_count = 2;
    options.quantum_us = 10.0;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const RequestView& view) {
      SpinWithProbesUs(view.request_class == 0 ? 1.0 : 20.0);
    };
    callbacks.on_complete = loadgen.CompletionHook();
    Runtime runtime(options, callbacks);
    runtime.Start();
    const LoadgenReport report = loadgen.Run(&runtime, 2.0, 300);
    runtime.WaitIdle();
    runtime.Shutdown();
    const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
    const std::uint64_t issued = report.issued;
    EXPECT_EQ(report.completed, issued) << "seed=" << seed;
    EXPECT_EQ(snapshot.RequestsCompleted(), issued) << "seed=" << seed;
    EXPECT_EQ(snapshot.Totals().requests_completed +
                  snapshot.dispatcher.requests_completed,
              issued)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace concord
