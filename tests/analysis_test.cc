// Tests for the static probe-gap verifier (src/analysis/probe_gap_verifier.h).

#include "src/analysis/probe_gap_verifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/compiler/probe_placement.h"
#include "src/compiler/programs.h"

namespace concord {
namespace {

constexpr double kDefaultIpc = 1.8;
constexpr double kDefaultGhz = 2.6;

double InstrNs(std::int64_t instructions, double ipc = kDefaultIpc, double ghz = kDefaultGhz) {
  return static_cast<double>(instructions) / ipc / ghz;
}

IrProgram SingleFunctionProgram(std::vector<IrNode> body, std::int64_t invocations = 1) {
  IrProgram program;
  program.name = "unit";
  IrFunction fn;
  fn.name = "f";
  fn.invocations = invocations;
  fn.body = std::move(body);
  program.functions.push_back(std::move(fn));
  return program;
}

TEST(ProbeGapVerifier, EveryTable1ProgramVerifiesAtDefaultQuantum) {
  GapVerifierConfig config;  // 5us quantum, default placement
  for (const Table1Program& program : Table1Programs()) {
    const ProgramGapReport report = VerifyProgram(program.ir, config);
    EXPECT_TRUE(report.pass) << program.name << ": instrumented "
                             << report.worst_instrumented_gap_ns << "ns, opaque "
                             << report.worst_opaque_gap_ns << "ns";
    EXPECT_TRUE(std::isfinite(report.worst_instrumented_gap_ns)) << program.name;
    EXPECT_TRUE(std::isfinite(report.worst_opaque_gap_ns)) << program.name;
    EXPECT_GT(report.worst_instrumented_gap_ns, 0.0) << program.name;
    ASSERT_EQ(report.functions.size(), 1u);
    EXPECT_EQ(report.functions[0].function, "main");
  }
}

// The verifier's bound must dominate every gap the average-case walker
// observes: the histogram's max is one realized execution, the verifier's
// max is over all of them.
TEST(ProbeGapVerifier, BoundDominatesObservedHistogramMax) {
  GapVerifierConfig config;
  for (const Table1Program& program : Table1Programs()) {
    const InstrumentationReport observed = AnalyzeProgram(program.ir, config.placement);
    const ProgramGapReport verdict = VerifyProgram(program.ir, config);
    const double bound =
        std::max(verdict.worst_instrumented_gap_ns, verdict.worst_opaque_gap_ns);
    EXPECT_GE(bound, observed.max_gap_ns - 1e-6) << program.name;
  }
}

// Acceptance shape from the issue: a long un-instrumented call inside a loop
// must fail, and the reported gap must be within 10% of the analytically
// known worst case. Here it is exact: the §4.3 rules bracket the call with
// probes, so the worst interval *is* the callee duration.
TEST(ProbeGapVerifier, PathologicalUninstrumentedCallInLoopFails) {
  constexpr double kCalleeNs = 50000.0;  // 50us callee vs 5us quantum
  const IrProgram program = SingleFunctionProgram(
      {IrNode::Loop(100, {IrNode::Straight(100), IrNode::UninstrumentedCall(kCalleeNs)})});
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  EXPECT_FALSE(report.pass);
  EXPECT_NEAR(report.worst_opaque_gap_ns, kCalleeNs, 0.10 * kCalleeNs);
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_FALSE(report.functions[0].pass);
  EXPECT_NE(report.functions[0].opaque_gap_path.find("un-instrumented call"), std::string::npos);
}

TEST(ProbeGapVerifier, LongStraightRunFailsWithExactBound) {
  constexpr std::int64_t kInstr = 1000000;
  const IrProgram program = SingleFunctionProgram({IrNode::Straight(kInstr)});
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  EXPECT_FALSE(report.pass);
  // Entry probe, then one unbroken run: the whole body is the interval.
  EXPECT_NEAR(report.worst_instrumented_gap_ns, InstrNs(kInstr), 1e-6);
  EXPECT_EQ(report.worst_opaque_gap_ns, 0.0);
}

TEST(ProbeGapVerifier, EmptyFunctionBodyPassesWithZeroGap) {
  const IrProgram program = SingleFunctionProgram({});
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.worst_instrumented_gap_ns, 0.0);
  EXPECT_EQ(report.worst_opaque_gap_ns, 0.0);
}

TEST(ProbeGapVerifier, ZeroTripLoopContributesNothing) {
  const IrProgram quiet = SingleFunctionProgram(
      {IrNode::Loop(0, {IrNode::Straight(1000000), IrNode::UninstrumentedCall(1e9)})});
  const ProgramGapReport report = VerifyProgram(quiet, GapVerifierConfig{});
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.worst_instrumented_gap_ns, 0.0);
  EXPECT_EQ(report.worst_opaque_gap_ns, 0.0);
}

TEST(ProbeGapVerifier, NestedUninstrumentedCallsReportDeepestWorst) {
  const IrProgram program = SingleFunctionProgram({IrNode::Loop(
      10, {IrNode::Loop(5, {IrNode::Straight(50), IrNode::UninstrumentedCall(2000.0)}),
           IrNode::UninstrumentedCall(3000.0)})});
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  // Both callees are probe-bracketed; the outer one is the worst interval.
  EXPECT_NEAR(report.worst_opaque_gap_ns, 3000.0, 1e-9);
  EXPECT_TRUE(report.pass);  // 3000 < 5000 quantum, and under the opaque bound
}

TEST(ProbeGapVerifier, UnrollSaturationBoundsBackEdgeInterval) {
  constexpr std::int64_t kBodyInstr = 3;
  GapVerifierConfig saturated;
  saturated.placement.max_unroll_factor = 16;
  const IrProgram program =
      SingleFunctionProgram({IrNode::Loop(1000, {IrNode::Straight(kBodyInstr)})});

  // Saturated: ceil(200/3) = 67 copies wanted, capped at 16.
  const ProgramGapReport capped = VerifyProgram(program, saturated);
  EXPECT_NEAR(capped.worst_instrumented_gap_ns, InstrNs(16 * kBodyInstr), 1e-9);
  EXPECT_NE(capped.functions[0].instrumented_gap_path.find("unroll saturated"),
            std::string::npos);

  // Unsaturated default (cap 256): the pass unrolls to the full 67 copies.
  const ProgramGapReport uncapped = VerifyProgram(program, GapVerifierConfig{});
  EXPECT_NEAR(uncapped.worst_instrumented_gap_ns, InstrNs(67 * kBodyInstr), 1e-9);
  EXPECT_TRUE(capped.pass);
  EXPECT_TRUE(uncapped.pass);
}

TEST(ProbeGapVerifier, RepeatedInvocationsCountTrailingSuffix) {
  // Entry probe, then 1000 instructions that no probe ever closes within the
  // function: the interval is closed only by the *next* invocation's entry
  // probe, and must still be counted.
  const IrProgram program = SingleFunctionProgram({IrNode::Straight(1000)}, /*invocations=*/100);
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  EXPECT_NEAR(report.worst_instrumented_gap_ns, InstrNs(1000), 1e-9);
}

TEST(ProbeGapVerifier, OpaqueSlackDistinguishesStrictMode) {
  // A 6us callee: unavoidable at any placement, within 2x the 5us quantum.
  const IrProgram program =
      SingleFunctionProgram({IrNode::Loop(100, {IrNode::UninstrumentedCall(6000.0)})});
  GapVerifierConfig relaxed;  // opaque_slack = 2.0
  EXPECT_TRUE(VerifyProgram(program, relaxed).pass);

  GapVerifierConfig strict = relaxed;
  strict.opaque_slack = 1.0;
  EXPECT_FALSE(VerifyProgram(program, strict).pass);
}

TEST(ProbeGapVerifier, JsonVerdictIsMachineReadable) {
  const IrProgram program = SingleFunctionProgram({IrNode::Straight(100)});
  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"program\":\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quantum_ns\":5000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"functions\":[{"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "verdict must be one line";
}

TEST(ProbeGapVerifier, MultiFunctionProgramsReportPerFunction) {
  IrProgram program;
  program.name = "multi";
  IrFunction ok;
  ok.name = "ok";
  ok.body = {IrNode::Straight(100)};
  IrFunction bad;
  bad.name = "bad";
  bad.body = {IrNode::Straight(10000000)};
  program.functions.push_back(std::move(ok));
  program.functions.push_back(std::move(bad));

  const ProgramGapReport report = VerifyProgram(program, GapVerifierConfig{});
  ASSERT_EQ(report.functions.size(), 2u);
  EXPECT_TRUE(report.functions[0].pass);
  EXPECT_FALSE(report.functions[1].pass);
  EXPECT_FALSE(report.pass);
}

}  // namespace
}  // namespace concord
