// Codegen-identity harness for the central queue's ordering hook
// (src/runtime/central_queue.h). cmake/CheckCentralQueueCodegen.cmake
// compiles this TU to assembly twice — once against the production header
// and once with -DCONCORD_CENTRAL_QUEUE_FIFO_ONLY, which removes PushOrdered
// entirely — and requires the output to be byte-identical, proving the
// deadline/size-aware ordered enqueue (EDF, approx-SRPT) adds zero cost to
// the ConcordJbsq FIFO hot path: same PushBack/PopFront/TakeFirstUnstarted
// code whether or not the ordered variant exists in the translation unit.
//
// Every externally visible function below pins one dispatcher hot-path
// operation on the FIFO queue. PushOrdered itself is deliberately NOT
// referenced: it is the delta under test.

#include <cstddef>

#include "src/runtime/central_queue.h"
#include "src/runtime/request.h"

namespace harness {

using concord::CentralQueue;
using concord::RuntimeRequest;

void Push(CentralQueue& queue, RuntimeRequest* request) { queue.PushBack(request); }

RuntimeRequest* Pop(CentralQueue& queue) { return queue.PopFront(); }

RuntimeRequest* TakeUnstarted(CentralQueue& queue) { return queue.TakeFirstUnstarted(); }

bool Empty(const CentralQueue& queue) { return queue.empty(); }

std::size_t Size(const CentralQueue& queue) { return queue.size(); }

}  // namespace harness
