// Cacheline-layout audit (`ctest -L alignment`): the false-sharing
// discipline of the hot-path shared structs, checked by offsetof/alignof so
// a refactor that reorders fields — or adds one to the wrong writer's block
// — fails here with the exact offset instead of showing up months later as
// an unexplained throughput regression.
//
// The discipline under audit (docs/perf.md "False sharing"):
//   - every cross-thread signal word owns a full 64-byte line,
//   - counters are grouped by *writer*, one aligned block per writer domain,
//   - SPSC ring endpoints (producer head / consumer tail) never share a line.
// Most checks are static_asserts — the build is the test — with a handful of
// runtime EXPECTs so `ctest -L alignment` reports the audited offsets even
// when everything passes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/runtime/ingress.h"
#include "src/runtime/runtime.h"
#include "src/runtime/spsc_ring.h"
#include "src/telemetry/telemetry.h"

namespace concord {
namespace {

// The layout contract everything below is stated against. 64 bytes is every
// x86-64 and mainstream ARM server line; kCacheLineSize is fixed (not
// hardware_destructive_interference_size) precisely so these asserts mean
// the same thing on every build.
static_assert(kCacheLineSize == 64);
static_assert(sizeof(SignalLine) == kCacheLineSize);
static_assert(alignof(SignalLine) == kCacheLineSize);
static_assert(sizeof(CacheLineAligned<std::atomic<std::size_t>>) == kCacheLineSize);

// --- telemetry counter blocks: one writer domain per aligned block. -------

// Worker-written vs dispatcher-written per-worker counters are separate
// aligned structs; neither may grow into a second line silently unnoticed —
// they are allocated in arrays, so size is the line-sharing guarantee.
static_assert(alignof(telemetry::WorkerCounters) == kCacheLineSize);
static_assert(sizeof(telemetry::WorkerCounters) == kCacheLineSize);
static_assert(alignof(telemetry::DispatcherWorkerCounters) == kCacheLineSize);
static_assert(sizeof(telemetry::DispatcherWorkerCounters) == kCacheLineSize);

// DispatcherCounters carries the pre-existing false-sharing fix this audit
// exists to pin: ingress_rejected (bumped by every backpressured submitter)
// and producer_slots (slot registration) used to share lines with the
// dispatcher's per-batch counters, so submit-side misbehavior invalidated
// dispatcher-hot lines. The submitter-written block must start on its own
// line and the dispatcher-written block must end before it.
static_assert(offsetof(telemetry::DispatcherCounters, ingress_rejected) % kCacheLineSize == 0);
static_assert(offsetof(telemetry::DispatcherCounters, producer_slots) >
              offsetof(telemetry::DispatcherCounters, ingress_rejected));
static_assert(offsetof(telemetry::DispatcherCounters, ingress_rejected) -
                  offsetof(telemetry::DispatcherCounters, slack_histogram) >=
              sizeof(std::uint64_t) * telemetry::kSlackBuckets);
// The dispatcher-hot leading counters must sit strictly below the submitter
// line (i.e. the struct is not accidentally one line total).
static_assert(offsetof(telemetry::DispatcherCounters, probe_polls) <
              offsetof(telemetry::DispatcherCounters, ingress_rejected));

// --- ProducerSlot: the lock-free ingress lane. ----------------------------

// The claim word is scanned and CASed by foreign threads hunting for a free
// slot while the owner is mid-submit; in_submit is stored on every Submit()
// and scanned by the dispatcher's shutdown quiescence check. Each owns a
// full line, and neither shares one with the submit-hot local_free vector
// header or the immutable slab fields.
static_assert(alignof(ProducerSlot) == kCacheLineSize);
static_assert(offsetof(ProducerSlot, claim) % kCacheLineSize == 0);
static_assert(offsetof(ProducerSlot, in_submit) % kCacheLineSize == 0);
static_assert(offsetof(ProducerSlot, in_submit) - offsetof(ProducerSlot, claim) >=
              kCacheLineSize);
static_assert(offsetof(ProducerSlot, slab_map) - offsetof(ProducerSlot, in_submit) >=
              kCacheLineSize);

// The two rings embedded in the slot start the struct; their own endpoint
// separation is asserted below on SpscRing directly.
static_assert(offsetof(ProducerSlot, ingress) == 0);

// --- SPSC ring endpoints. -------------------------------------------------

// head_ is producer-owned, tail_ is consumer-owned; CacheLineAligned keeps
// each on its own line so a push never invalidates the consumer's polling
// line (and vice versa). The ring is a template, so instantiate the shape
// the runtime actually uses.
using RequestRing = SpscRing<RuntimeRequest*>;
static_assert(alignof(RequestRing) >= kCacheLineSize);

TEST(AlignmentAuditTest, ReportsAuditedOffsets) {
  // Redundant with the static_asserts above by construction; exists so the
  // alignment label has a live, reporting test and the offsets appear in
  // failure output should the asserts ever be relaxed.
  EXPECT_EQ(offsetof(telemetry::DispatcherCounters, ingress_rejected) % kCacheLineSize, 0u);
  EXPECT_EQ(offsetof(ProducerSlot, claim) % kCacheLineSize, 0u);
  EXPECT_EQ(offsetof(ProducerSlot, in_submit) % kCacheLineSize, 0u);
  EXPECT_GE(sizeof(ProducerSlot), 4 * kCacheLineSize)
      << "claim, in_submit, slab block and local_free should span distinct lines";
}

TEST(AlignmentAuditTest, SignalLinesNeverShareALineInArrays) {
  // The dispatcher->worker preemption signals are allocated as arrays of
  // SignalLine; adjacency must not create sharing.
  SignalLine lines[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&lines[0].word);
  const auto b = reinterpret_cast<std::uintptr_t>(&lines[1].word);
  EXPECT_GE(b - a, kCacheLineSize);
  EXPECT_EQ(a % kCacheLineSize, 0u);
}

TEST(AlignmentAuditTest, HeapAllocatedSlotRespectsAlignment) {
  // alignas on a struct only helps if allocation honors it; operator new for
  // over-aligned types must return 64-byte-aligned storage (the runtime
  // heap-allocates ProducerSlot via make_unique).
  telemetry::DispatcherCounters counters;
  Runtime::Options options;
  options.worker_count = 1;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  auto slot = std::make_unique<ProducerSlot>(&runtime, 8, /*huge_page_slab=*/false);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slot.get()) % kCacheLineSize, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&slot->claim) % kCacheLineSize, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&counters.ingress_rejected) % kCacheLineSize, 0u);
}

}  // namespace
}  // namespace concord
