// Tests for the probe-placement pass and instrumentation model: placement
// rules, compressed loop analysis, timeliness math, and the Table 1 programs.

#include <gtest/gtest.h>

#include <cmath>

#include "src/compiler/instrumentation_model.h"
#include "src/compiler/ir.h"
#include "src/compiler/probe_placement.h"
#include "src/compiler/programs.h"

namespace concord {
namespace {

IrProgram SingleFunction(std::vector<IrNode> body, std::int64_t invocations = 1,
                         double ipc = 1.8) {
  IrProgram program;
  program.name = "test";
  program.ipc = ipc;
  IrFunction fn;
  fn.name = "f";
  fn.invocations = invocations;
  fn.body = std::move(body);
  program.functions.push_back(std::move(fn));
  return program;
}

TEST(IrTest, DynamicInstructionCounts) {
  std::vector<IrNode> nodes;
  nodes.push_back(IrNode::Straight(100));
  nodes.push_back(IrNode::Loop(10, {IrNode::Straight(50)}));
  nodes.push_back(IrNode::UninstrumentedCall(1000.0));
  EXPECT_EQ(DynamicInstructions(nodes), 100 + 10 * 50);
}

TEST(ProbePlacementTest, FunctionEntryProbePerInvocation) {
  const IrProgram program = SingleFunction({IrNode::Straight(1000)}, /*invocations=*/50);
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  EXPECT_EQ(report.probes_executed, 50);
  EXPECT_EQ(report.instructions_executed, 50 * 1000);
}

TEST(ProbePlacementTest, UninstrumentedCallGetsProbesAroundIt) {
  const IrProgram program = SingleFunction({
      IrNode::Straight(100),
      IrNode::UninstrumentedCall(5000.0),
      IrNode::Straight(100),
  });
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  // Entry + before-call + after-call.
  EXPECT_EQ(report.probes_executed, 3);
  EXPECT_DOUBLE_EQ(report.uninstrumented_time_ns, 5000.0);
  // The opaque callee is the longest gap.
  EXPECT_DOUBLE_EQ(report.max_gap_ns, 5000.0);
}

TEST(ProbePlacementTest, LoopBackEdgeProbes) {
  // Body of 500 instructions (>= 200): no unrolling, one probe per back-edge.
  const IrProgram program = SingleFunction({IrNode::Loop(1000, {IrNode::Straight(500)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  // Entry probe + 999 back-edge probes.
  EXPECT_EQ(report.probes_executed, 1 + 999);
  EXPECT_EQ(report.instructions_executed, 1000 * 500);
  EXPECT_EQ(report.instructions_saved_by_unrolling, 0);
}

TEST(ProbePlacementTest, SmallLoopBodiesAreUnrolled) {
  // 10-instruction body: unrolled 20x to reach 200; probes drop 20x.
  const IrProgram program = SingleFunction({IrNode::Loop(10000, {IrNode::Straight(10)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  // Entry + ceil(10000/20) - 1 back-edges.
  EXPECT_EQ(report.probes_executed, 1 + 10000 / 20 - 1);
  EXPECT_GT(report.instructions_saved_by_unrolling, 0);
}

TEST(ProbePlacementTest, CompressedAnalysisMatchesSmallLoops) {
  // The compressed (capture + scale) path for loops with internal probes
  // must agree with literal iteration: compare a 5-iteration loop against
  // five manually concatenated copies.
  std::vector<IrNode> body = {IrNode::Straight(300), IrNode::UninstrumentedCall(1000.0),
                              IrNode::Straight(300)};
  const IrProgram looped = SingleFunction({IrNode::Loop(5, body)});

  std::vector<IrNode> flat;
  for (int i = 0; i < 5; ++i) {
    for (const IrNode& node : body) {
      flat.push_back(node);
    }
    // A loop places a back-edge probe between iterations; model it in the
    // flat version with an instrumented call (pure probe).
    if (i < 4) {
      IrNode probe;
      probe.kind = IrNode::Kind::kCall;
      probe.callee_instrumented = true;
      flat.push_back(probe);
    }
  }
  const IrProgram unrolled = SingleFunction(std::move(flat));

  const InstrumentationReport a = AnalyzeProgram(looped, PlacementConfig{});
  const InstrumentationReport b = AnalyzeProgram(unrolled, PlacementConfig{});
  EXPECT_EQ(a.probes_executed, b.probes_executed);
  EXPECT_EQ(a.instructions_executed, b.instructions_executed);
  EXPECT_NEAR(a.TotalTimeNs(), b.TotalTimeNs(), 1e-6);
  EXPECT_DOUBLE_EQ(a.max_gap_ns, b.max_gap_ns);
}

TEST(ProbePlacementTest, LargeLoopScalesLinearly) {
  // 10^7 iterations must analyze instantly (compressed) and produce counts
  // proportional to the trip count.
  const IrProgram program = SingleFunction({IrNode::Loop(10000000, {IrNode::Straight(400)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  EXPECT_EQ(report.instructions_executed, 4000000000LL);
  EXPECT_EQ(report.probes_executed, 1 + 10000000 - 1);
}

TEST(InstrumentationModelTest, OverheadScalesWithProbeCost) {
  const IrProgram program = SingleFunction({IrNode::Loop(100000, {IrNode::Straight(200)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  const OverheadEstimate estimate = EstimateOverhead(report, ProbeCosts{}, 1.8);
  // One 2-cycle probe per 200 instructions at IPC 1.8: 2/(200/1.8) = 1.8%.
  EXPECT_NEAR(estimate.coop_fraction, 0.018, 0.002);
  // rdtsc probes are 15x more expensive.
  EXPECT_NEAR(estimate.rdtsc_fraction / estimate.coop_fraction, 15.0, 0.5);
}

TEST(InstrumentationModelTest, UnrollingCanMakeOverheadNegative) {
  const IrProgram program = SingleFunction({IrNode::Loop(1000000, {IrNode::Straight(5)})});
  const InstrumentationReport report = AnalyzeProgram(program, PlacementConfig{});
  const OverheadEstimate estimate = EstimateOverhead(report, ProbeCosts{}, 1.8);
  EXPECT_LT(estimate.coop_fraction, 0.0);
}

TEST(InstrumentationModelTest, TimelinessUniformGap) {
  // All gaps equal g: delay ~ U(0,g): mean g/2, stddev g/sqrt(12).
  InstrumentationReport report;
  report.gaps[100.0] = 1000;
  report.max_gap_ns = 100.0;
  const TimelinessEstimate t = EstimateTimeliness(report);
  EXPECT_NEAR(t.mean_delay_ns, 50.0, 1e-9);
  EXPECT_NEAR(t.stddev_ns, 100.0 / std::sqrt(12.0), 1e-9);
  EXPECT_NEAR(t.p99_delay_ns, 99.0, 0.5);
  EXPECT_DOUBLE_EQ(t.max_delay_ns, 100.0);
}

TEST(InstrumentationModelTest, TimelinessLengthBiased) {
  // 99 gaps of 10ns and 1 gap of 1000ns: the long gap holds half the time,
  // so it dominates the delay distribution.
  InstrumentationReport report;
  report.gaps[10.0] = 99;   // 990ns of time
  report.gaps[1000.0] = 1;  // 1000ns of time
  report.max_gap_ns = 1000.0;
  const TimelinessEstimate t = EstimateTimeliness(report);
  // E[d] = (990/1990)*5 + (1000/1990)*500 ~= 253.
  EXPECT_NEAR(t.mean_delay_ns, 253.7, 1.0);
  EXPECT_GT(t.stddev_ns, 200.0);
  EXPECT_GT(t.p99_delay_ns, 900.0);
}

TEST(InstrumentationModelTest, EmptyReportIsZero) {
  const TimelinessEstimate t = EstimateTimeliness(InstrumentationReport{});
  EXPECT_DOUBLE_EQ(t.mean_delay_ns, 0.0);
  EXPECT_DOUBLE_EQ(t.stddev_ns, 0.0);
}

// --- Table 1 programs through the full pipeline ---

class Table1Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table1Test, ModelReproducesPublishedRow) {
  const Table1Program& program = Table1Programs()[GetParam()];
  const InstrumentationReport report = AnalyzeProgram(program.ir, PlacementConfig{});
  const OverheadEstimate overhead = EstimateOverhead(report, ProbeCosts{}, program.ir.ipc);
  const TimelinessEstimate timeliness = EstimateTimeliness(report);

  const double target = program.paper_concord_overhead_pct / 100.0;
  // The stand-in is synthetic: require the right sign region and magnitude
  // (within 1.2 percentage points of the published value).
  EXPECT_NEAR(overhead.coop_fraction, target, 0.012) << program.name;

  // Timeliness: within 50% + 30ns of the published stddev, and always inside
  // the paper's global bound of 2us at a 5us quantum.
  const double target_stddev = program.paper_stddev_us * 1000.0;
  EXPECT_NEAR(timeliness.stddev_ns, target_stddev, target_stddev * 0.5 + 30.0) << program.name;
  EXPECT_LT(timeliness.stddev_ns, 2000.0) << program.name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, Table1Test,
                         ::testing::Range<std::size_t>(0, 24),
                         [](const ::testing::TestParamInfo<std::size_t>& param) {
                           std::string name = Table1Programs()[param.param].name;
                           for (char& c : name) {
                             if (c == '-' || c == '_') {
                               c = 'X';
                             }
                           }
                           return name;
                         });

TEST(Table1Test, AverageOverheadNearOnePercent) {
  double total = 0.0;
  for (const Table1Program& program : Table1Programs()) {
    const InstrumentationReport report = AnalyzeProgram(program.ir, PlacementConfig{});
    total += EstimateOverhead(report, ProbeCosts{}, program.ir.ipc).coop_fraction;
  }
  const double average = total / static_cast<double>(Table1Programs().size());
  // Paper: 1.04% average.
  EXPECT_GT(average, 0.0);
  EXPECT_LT(average, 0.025);
}

TEST(Table1Test, ConcordBeatsCompilerInterruptsOnAverage) {
  double concord = 0.0;
  double ci = 0.0;
  for (const Table1Program& program : Table1Programs()) {
    const InstrumentationReport report = AnalyzeProgram(program.ir, PlacementConfig{});
    concord += EstimateOverhead(report, ProbeCosts{}, program.ir.ipc).coop_fraction;
    ci += program.paper_ci_overhead_pct / 100.0;
  }
  // Paper: 13.1x lower on average.
  EXPECT_GT(ci / std::max(concord, 1e-9), 5.0);
}

}  // namespace
}  // namespace concord
