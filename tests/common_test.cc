// Unit tests for src/common: RNG statistical properties and determinism,
// clock conversions, cache-line layout, CPU helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/cacheline.h"
#include "src/common/cpu.h"
#include "src/common/cycles.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace concord {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndRange) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform(2.0, 6.0);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 6.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.02);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.UniformU64(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 2.5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  Rng rng(29);
  const double mu = 1.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(mu, sigma);
  }
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n, expected, expected * 0.01);
}

TEST(CpuClockTest, RoundTripConversions) {
  const CpuClock clock(2.6);
  EXPECT_DOUBLE_EQ(clock.CyclesToNs(2600.0), 1000.0);
  EXPECT_DOUBLE_EQ(clock.NsToCycles(1000.0), 2600.0);
  EXPECT_DOUBLE_EQ(clock.UsToCycles(1.0), 2600.0);
  EXPECT_DOUBLE_EQ(clock.CyclesToUs(2600.0), 1.0);
  EXPECT_NEAR(clock.CyclesToNs(clock.NsToCycles(123.456)), 123.456, 1e-12);
}

TEST(CpuClockTest, DefaultIsPaperTestbed) {
  const CpuClock clock;
  EXPECT_DOUBLE_EQ(clock.ghz(), 2.6);
}

TEST(TimeConversionTest, UnitHelpers) {
  EXPECT_DOUBLE_EQ(UsToNs(5.0), 5000.0);
  EXPECT_DOUBLE_EQ(NsToUs(5000.0), 5.0);
  EXPECT_DOUBLE_EQ(MsToNs(1.0), 1e6);
  EXPECT_DOUBLE_EQ(SecToNs(1.0), 1e9);
}

TEST(TimeConversionTest, KrpsToInterarrival) {
  // 100 kRps = 100000 requests/sec = one request every 10 us.
  EXPECT_DOUBLE_EQ(KrpsToInterarrivalNs(100.0), 10000.0);
  EXPECT_DOUBLE_EQ(KrpsToInterarrivalNs(1.0), 1e6);
}

TEST(CacheLineTest, SignalLineIsExactlyOneLine) {
  EXPECT_EQ(sizeof(SignalLine), kCacheLineSize);
  EXPECT_EQ(alignof(SignalLine), kCacheLineSize);
}

TEST(CacheLineTest, AlignedValuesDoNotShareLines) {
  CacheLineAligned<int> values[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&values[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&values[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(CpuTest, AvailableCountPositive) { EXPECT_GE(AvailableCpuCount(), 1); }

TEST(CpuTest, PinToInvalidCpuFails) { EXPECT_FALSE(PinThisThreadToCpu(-1)); }

TEST(CpuTest, PinToCpuZeroSucceeds) {
  // CPU 0 exists on every host this runs on.
  EXPECT_TRUE(PinThisThreadToCpu(0));
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CONCORD_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ CONCORD_CHECK(false) << "boom"; }, "Check failed");
}

TEST(TscTest, MonotonicOnX86) {
#if defined(__x86_64__)
  const std::uint64_t a = ReadTsc();
  const std::uint64_t b = ReadTsc();
  EXPECT_GE(b, a);
#else
  GTEST_SKIP() << "no TSC on this architecture";
#endif
}

}  // namespace
}  // namespace concord
