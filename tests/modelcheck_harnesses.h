// The four protocol harnesses run under the model checker (docs/
// modelcheck.md): SpscRing wraparound and partial-batch transfer, the
// EventRing seqlock reader/writer race, the ProducerSlot claim/teardown
// handover, and the Submit-vs-StopAccepting shutdown handshake. Shared
// between modelcheck_test.cc (clean exhaustive runs) and
// modelcheck_mutation_test.cc (each weakened memory-order mutant must be
// caught on the same harnesses).

#ifndef CONCORD_TESTS_MODELCHECK_HARNESSES_H_
#define CONCORD_TESTS_MODELCHECK_HARNESSES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "src/modelcheck/checked_sync.h"
#include "src/modelcheck/model.h"
#include "src/runtime/ingress_protocol.h"
#include "src/runtime/spsc_ring.h"
#include "src/telemetry/event_ring.h"

namespace concord::modelcheck_harness {

namespace mc = ::concord::modelcheck;
using CheckedSync = mc::CheckedSync;

// A packaged Explore() invocation. The state lives behind a shared_ptr so
// the setup lambda can rebuild it fresh for every execution.
struct Harness {
  mc::Options options;
  std::function<void()> setup;
  std::vector<std::function<void()>> threads;
  std::function<void()> verify;

  mc::Result Run(const std::vector<mc::Mutation>& mutations = {}) const {
    return mc::Explore(options, setup, threads, verify, mutations);
  }
};

// ---- SpscRing: wraparound under single-element transfer -----------------
//
// Capacity-2 ring (4 physical slots), 4 pushes: the masked indices wrap and
// occupancy crosses full/empty in both directions. The consumer must observe
// exactly 1..4 in order; slot transfers are race-checked Cells, so a
// weakened index publish surfaces as a data race.
inline Harness RingWraparound(int pushes = 4) {
  struct State {
    SpscRing<int, CheckedSync> ring{2};
    std::vector<int> got;
  };
  auto st = std::make_shared<std::unique_ptr<State>>();
  Harness h;
  h.options.name = "ring_wraparound";
  h.options.preemption_bound = 2;
  h.setup = [st] {
    *st = std::make_unique<State>();
    mc::NameRange(&(*st)->ring, sizeof((*st)->ring), "ring");
  };
  h.threads = {
      [st, pushes] {  // T0: producer
        State& s = **st;
        for (int v = 1; v <= pushes; ++v) {
          while (!s.ring.TryPush(v)) {
            CheckedSync::Yield();
          }
        }
      },
      [st, pushes] {  // T1: consumer
        State& s = **st;
        while (static_cast<int>(s.got.size()) < pushes) {
          int v = 0;
          if (s.ring.TryPop(&v)) {
            s.got.push_back(v);
          } else {
            CheckedSync::Yield();
          }
        }
      },
  };
  h.verify = [st, pushes] {
    State& s = **st;
    mc::Require(static_cast<int>(s.got.size()) == pushes, "consumer popped a wrong count");
    for (int i = 0; i < pushes; ++i) {
      const int got = s.got[static_cast<std::size_t>(i)];
      if (got != i + 1) {
        std::ostringstream os;
        os << "lost/duplicated/reordered element: got[" << i << "] = " << got;
        mc::Require(false, os.str());
      }
    }
    mc::Require(s.ring.EmptyApprox(), "ring not empty after all pops");
  };
  return h;
}

// ---- SpscRing: partial batch push/pop -----------------------------------
//
// TryPushBatch of 3 into a capacity-2 ring must split (2, then 1) and the
// batched pop must retire elements with a single release store without
// losing the order.
inline Harness RingPartialBatch() {
  struct State {
    SpscRing<int, CheckedSync> ring{2};
    std::vector<int> got;
  };
  auto st = std::make_shared<std::unique_ptr<State>>();
  Harness h;
  h.options.name = "ring_partial_batch";
  h.options.preemption_bound = 2;
  h.setup = [st] {
    *st = std::make_unique<State>();
    mc::NameRange(&(*st)->ring, sizeof((*st)->ring), "ring");
  };
  h.threads = {
      [st] {  // T0: producer, batched
        State& s = **st;
        const int values[3] = {1, 2, 3};
        std::size_t pushed = 0;
        while (pushed < 3) {
          const std::size_t n = s.ring.TryPushBatch(values + pushed, 3 - pushed);
          if (n == 0) {
            CheckedSync::Yield();
          }
          pushed += n;
        }
      },
      [st] {  // T1: consumer, batched
        State& s = **st;
        int buf[2];
        while (s.got.size() < 3) {
          const std::size_t n = s.ring.TryPopBatch(buf, 2);
          if (n == 0) {
            CheckedSync::Yield();
          }
          for (std::size_t i = 0; i < n; ++i) {
            s.got.push_back(buf[i]);
          }
        }
      },
  };
  h.verify = [st] {
    State& s = **st;
    mc::Require(s.got.size() == 3, "batched consumer popped a wrong count");
    for (int i = 0; i < 3; ++i) {
      mc::Require(s.got[static_cast<std::size_t>(i)] == i + 1,
                  "batched transfer lost or reordered an element");
    }
  };
  return h;
}

// ---- EventRing: seqlock writer vs reader --------------------------------
//
// Single-slot ring, 3 pushes of a two-word event (n, n + 1000): the
// concurrent drains exercise the torn-read discard path (lap + mid-write
// rejects), and verify checks that every event that *was* delivered is
// untorn, in increasing sequence order, and that delivered + dropped
// accounts for every push.
inline Harness SeqlockEventRing(int pushes = 3) {
  struct Event {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  struct State {
    telemetry::EventRing<Event, CheckedSync> ring{1};
    std::vector<telemetry::SequencedEvent<Event>> seen;
  };
  auto st = std::make_shared<std::unique_ptr<State>>();
  Harness h;
  h.options.name = "seqlock_event_ring";
  h.options.preemption_bound = 2;
  h.setup = [st] {
    *st = std::make_unique<State>();
    mc::NameRange(&(*st)->ring, sizeof((*st)->ring), "ring");
  };
  h.threads = {
      [st, pushes] {  // T0: producer
        State& s = **st;
        for (int i = 0; i < pushes; ++i) {
          s.ring.Push(Event{static_cast<std::uint64_t>(i),
                            static_cast<std::uint64_t>(i) + 1000});
        }
      },
      [st, pushes] {  // T1: concurrent reader
        State& s = **st;
        for (int i = 0; i < pushes; ++i) {
          s.ring.Drain(&s.seen);
          CheckedSync::Yield();
        }
      },
  };
  h.verify = [st, pushes] {
    State& s = **st;
    s.ring.Drain(&s.seen);  // final drain after both threads quiesced
    std::uint64_t last_seq = 0;
    bool first = true;
    for (const auto& ev : s.seen) {
      mc::Require(ev.value.b == ev.value.a + 1000, "torn read: event words are inconsistent");
      mc::Require(ev.value.a == ev.sequence, "event carries the wrong sequence payload");
      mc::Require(first || ev.sequence > last_seq, "drained sequences not increasing");
      last_seq = ev.sequence;
      first = false;
    }
    mc::Require(s.seen.size() + s.ring.dropped() == static_cast<std::uint64_t>(pushes),
                "delivered + dropped does not account for every push");
  };
  return h;
}

// ---- ProducerSlot: claim handover / adoption race -----------------------
//
// T0 owns the slot, writes into it (a race-checked Cell), and releases the
// claim; T1 and T2 race to adopt it. Exactly one may win, and the winner
// must observe the owner's writes — a weakened release handover surfaces as
// a data race on the Cell.
inline Harness ClaimTeardown() {
  struct State {
    CheckedSync::Atomic<std::size_t> claim{1};  // owned by T0 (claim word 1)
    CheckedSync::Cell<std::uint64_t> owner_data{0};
    bool won[2] = {false, false};
    std::uint64_t seen[2] = {0, 0};
  };
  auto st = std::make_shared<std::unique_ptr<State>>();
  Harness h;
  h.options.name = "claim_teardown";
  h.options.preemption_bound = 2;
  h.setup = [st] {
    *st = std::make_unique<State>();
    mc::Name(&(*st)->claim, "claim");
    mc::Name(&(*st)->owner_data, "owner_data");
  };
  auto adopter = [st](int idx, std::size_t self) {
    State& s = **st;
    for (;;) {
      if (ingress_protocol::TryClaim<CheckedSync>(s.claim, self)) {
        s.won[idx] = true;
        s.seen[idx] = s.owner_data;  // must be ordered after the handover
        return;
      }
      // Claimed by the original owner (1) or the other adopter; give up
      // once the other adopter has it, otherwise wait for the release.
      const std::size_t holder = s.claim.load(std::memory_order_acquire);
      if (holder != 0 && holder != 1 && holder != self) {
        return;
      }
      CheckedSync::Yield();
    }
  };
  h.threads = {
      [st] {  // T0: owner — publish data, then hand the slot over
        State& s = **st;
        s.owner_data = 7;
        ingress_protocol::ReleaseClaim<CheckedSync>(s.claim);
      },
      [adopter] { adopter(0, 2); },  // T1
      [adopter] { adopter(1, 3); },  // T2
  };
  h.verify = [st] {
    State& s = **st;
    mc::Require(s.won[0] + s.won[1] == 1, "slot adoption must have exactly one winner");
    const int w = s.won[0] ? 0 : 1;
    mc::Require(s.seen[w] == 7, "adopter observed stale slot state");
    const std::size_t holder = s.claim.load(std::memory_order_relaxed);
    mc::Require(holder == (s.won[0] ? 2u : 3u), "claim word does not name the winner");
  };
  return h;
}

// ---- Submit vs StopAccepting: the shutdown handshake --------------------
//
// T0 runs one Submit through the in_submit/accepting handshake; T1 stops
// intake, waits for quiescence, and drains. The protocol invariant: an
// accepted request is always drained (never lost), and a request is never
// drained twice.
inline Harness SubmitVsShutdown() {
  struct State {
    CheckedSync::Atomic<std::uint32_t> in_submit{0};
    CheckedSync::Atomic<bool> accepting{true};
    SpscRing<int, CheckedSync> ring{2};
    bool accepted = false;
    std::vector<int> drained;
  };
  auto st = std::make_shared<std::unique_ptr<State>>();
  Harness h;
  h.options.name = "submit_vs_shutdown";
  h.options.preemption_bound = 3;
  h.setup = [st] {
    *st = std::make_unique<State>();
    mc::Name(&(*st)->in_submit, "in_submit");
    mc::Name(&(*st)->accepting, "accepting");
    mc::NameRange(&(*st)->ring, sizeof((*st)->ring), "ring");
  };
  h.threads = {
      [st] {  // T0: submitter
        State& s = **st;
        const auto outcome = ingress_protocol::SubmitWithHandshake<CheckedSync>(
            s.in_submit, s.accepting, [&s] { return s.ring.TryPush(42); });
        s.accepted = outcome == ingress_protocol::SubmitOutcome::kAccepted;
      },
      [st] {  // T1: dispatcher shutdown — stop, quiesce, drain
        State& s = **st;
        ingress_protocol::StopAccepting<CheckedSync>(s.accepting);
        while (!ingress_protocol::SlotQuiescent<CheckedSync>(s.in_submit)) {
          CheckedSync::Yield();
        }
        int v = 0;
        while (s.ring.TryPop(&v)) {
          s.drained.push_back(v);
        }
      },
  };
  h.verify = [st] {
    State& s = **st;
    if (s.accepted) {
      mc::Require(s.drained.size() == 1 && s.drained[0] == 42,
                  "accepted request was lost by the shutdown drain");
    } else {
      mc::Require(s.drained.empty(), "rejected submit still left a request behind");
    }
  };
  return h;
}

}  // namespace concord::modelcheck_harness

#endif  // CONCORD_TESTS_MODELCHECK_HARNESSES_H_
