// Codegen-identity harness for the Sync parameterization layer
// (src/common/sync.h). cmake/CheckSyncCodegen.cmake compiles this TU to
// assembly twice — once against the production StdSync and once with
// -DCONCORD_SYNC_BASELINE (raw std::atomic reference definitions) — and
// requires the output to be byte-identical, proving the parameterization
// that lets the model checker run the real protocol code adds zero cost to
// the production hot path.
//
// Every externally visible function below pins one protocol hot path:
// ring push/pop (single and batched), the seqlock event publish/drain, and
// the ingress claim/handshake templates.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sync.h"
#include "src/runtime/ingress_protocol.h"
#include "src/runtime/spsc_ring.h"
#include "src/telemetry/event_ring.h"

namespace harness {

using Ring = concord::SpscRing<int, concord::StdSync>;

bool RingPush(Ring& ring, int value) { return ring.TryPush(value); }
bool RingPop(Ring& ring, int* out) { return ring.TryPop(out); }
std::size_t RingPushBatch(Ring& ring, const int* values, std::size_t n) {
  return ring.TryPushBatch(values, n);
}
std::size_t RingPopBatch(Ring& ring, int* out, std::size_t n) { return ring.TryPopBatch(out, n); }
std::size_t RingSize(const Ring& ring) { return ring.SizeApprox(); }

struct Record {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
using EventRing = concord::telemetry::EventRing<Record, concord::StdSync>;

void EventPush(EventRing& ring, const Record& record) { ring.Push(record); }
std::size_t EventDrain(EventRing& ring, std::vector<Record>* out) { return ring.Drain(out); }

bool Claim(concord::StdSync::Atomic<std::size_t>& claim, std::size_t self) {
  return concord::ingress_protocol::TryClaim<concord::StdSync>(claim, self);
}
void Release(concord::StdSync::Atomic<std::size_t>& claim) {
  concord::ingress_protocol::ReleaseClaim<concord::StdSync>(claim);
}
concord::ingress_protocol::SubmitOutcome Submit(
    concord::StdSync::Atomic<std::uint32_t>& in_submit,
    concord::StdSync::Atomic<bool>& accepting, bool (*push)()) {
  return concord::ingress_protocol::SubmitWithHandshake<concord::StdSync>(in_submit, accepting,
                                                                          push);
}
void Stop(concord::StdSync::Atomic<bool>& accepting) {
  concord::ingress_protocol::StopAccepting<concord::StdSync>(accepting);
}
bool Quiescent(concord::StdSync::Atomic<std::uint32_t>& in_submit) {
  return concord::ingress_protocol::SlotQuiescent<concord::StdSync>(in_submit);
}

}  // namespace harness
