// Parameterized property tests over every named workload: empirical moments
// match the analytic ones, class frequencies match the mixture weights, and
// traces survive generation -> rescale -> replay round trips.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/common/cycles.h"
#include "src/common/rng.h"
#include "src/stats/summary.h"
#include "src/workload/trace.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

class WorkloadPropertyTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(WorkloadPropertyTest, EmpiricalMeanMatchesAnalytic) {
  const WorkloadSpec spec = MakeWorkload(GetParam());
  Rng rng(101);
  Summary summary;
  for (int i = 0; i < 400000; ++i) {
    summary.Record(spec.distribution->Sample(rng).service_ns);
  }
  const double analytic = spec.distribution->MeanNs();
  // Tolerance covers heavy-tailed mixtures: with 0.5%-probability 500us
  // components, the sample mean's sigma is ~1.8% at this sample size.
  EXPECT_NEAR(summary.Mean(), analytic, analytic * 0.06) << spec.name;
}

TEST_P(WorkloadPropertyTest, SampledClassesAreValidIndices) {
  const WorkloadSpec spec = MakeWorkload(GetParam());
  const auto class_count = static_cast<int>(spec.distribution->ClassNames().size());
  Rng rng(102);
  for (int i = 0; i < 50000; ++i) {
    const ServiceSample sample = spec.distribution->Sample(rng);
    ASSERT_GE(sample.request_class, 0);
    ASSERT_LT(sample.request_class, class_count);
    ASSERT_GT(sample.service_ns, 0.0);
  }
}

TEST_P(WorkloadPropertyTest, ClassFrequenciesMatchMixtureWeights) {
  const WorkloadSpec spec = MakeWorkload(GetParam());
  const auto* mixture = dynamic_cast<const DiscreteMixtureDistribution*>(spec.distribution.get());
  if (mixture == nullptr) {
    GTEST_SKIP() << "not a discrete mixture";
  }
  Rng rng(103);
  std::map<int, int> counts;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    ++counts[spec.distribution->Sample(rng).request_class];
  }
  for (std::size_t c = 0; c < mixture->components().size(); ++c) {
    const double expected = mixture->components()[c].probability;
    const double observed =
        static_cast<double>(counts[static_cast<int>(c)]) / static_cast<double>(n);
    EXPECT_NEAR(observed, expected, 0.003 + expected * 0.05)
        << spec.name << " class " << mixture->components()[c].name;
  }
}

TEST_P(WorkloadPropertyTest, TraceRoundTripPreservesEverything) {
  const WorkloadSpec spec = MakeWorkload(GetParam());
  PoissonArrivals arrivals(5000.0);
  Rng rng(104);
  const Trace original = GenerateTrace(*spec.distribution, arrivals, 2000, rng);
  std::stringstream buffer;
  WriteTrace(original, buffer);
  Trace loaded;
  ASSERT_TRUE(ReadTrace(buffer, &loaded)) << spec.name;
  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    ASSERT_DOUBLE_EQ(loaded.requests[i].arrival_ns, original.requests[i].arrival_ns);
    ASSERT_DOUBLE_EQ(loaded.requests[i].service_ns, original.requests[i].service_ns);
    ASSERT_EQ(loaded.requests[i].request_class, original.requests[i].request_class);
  }
}

TEST_P(WorkloadPropertyTest, RescalePreservesServiceTimesAndOrder) {
  const WorkloadSpec spec = MakeWorkload(GetParam());
  PoissonArrivals arrivals(2000.0);
  Rng rng(105);
  Trace trace = GenerateTrace(*spec.distribution, arrivals, 5000, rng);
  const Trace before = trace;
  RescaleTraceLoad(&trace, 42.0);
  double previous = 0.0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    ASSERT_DOUBLE_EQ(trace.requests[i].service_ns, before.requests[i].service_ns);
    ASSERT_GE(trace.requests[i].arrival_ns, previous);
    previous = trace.requests[i].arrival_ns;
  }
  const double achieved = static_cast<double>(trace.requests.size()) /
                          (trace.DurationNs() / kNsPerSec) / 1000.0;
  EXPECT_NEAR(achieved, 42.0, 1.0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPropertyTest,
                         ::testing::ValuesIn(AllWorkloadIds()),
                         [](const ::testing::TestParamInfo<WorkloadId>& param) {
                           std::string name = MakeWorkload(param.param).name;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace concord
