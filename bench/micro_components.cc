// Component microbenchmarks (google-benchmark): the building blocks' costs
// on the host. Cycle-level absolute numbers depend on the machine (and this
// container is shared), but the relative costs — probe vs rdtsc vs context
// switch — are the mechanism story of §3.1.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/cycles.h"
#include "src/common/rng.h"
#include "src/kvstore/db.h"
#include "src/runtime/context.h"
#include "src/runtime/instrument.h"
#include "src/runtime/spsc_ring.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace concord {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(2);
  for (auto _ : state) {
    histogram.Record(rng.Exponential(1000.0));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram histogram;
  Rng rng(3);
  for (int i = 0; i < 1000000; ++i) {
    histogram.Record(rng.Exponential(1000.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Quantile(0.999));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_ProbeUnbound(benchmark::State& state) {
  SetProbeBinding({});
  for (auto _ : state) {
    CONCORD_PROBE();
  }
}
BENCHMARK(BM_ProbeUnbound);

void BM_ProbeBoundNoSignal(benchmark::State& state) {
  SignalLine line;
  struct State {
    SignalLine* signal;
  } probe_state{&line};
  ProbeBinding binding;
  binding.fn = [](void* arg) {
    auto* s = static_cast<State*>(arg);
    benchmark::DoNotOptimize(s->signal->word.load(std::memory_order_acquire));
  };
  binding.arg = &probe_state;
  SetProbeBinding(binding);
  for (auto _ : state) {
    CONCORD_PROBE();
  }
  SetProbeBinding({});
}
BENCHMARK(BM_ProbeBoundNoSignal);

void BM_Rdtsc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadTsc());
  }
}
BENCHMARK(BM_Rdtsc);

void BM_FiberSwitchRoundTrip(benchmark::State& state) {
  Fiber fiber;
  bool stop = false;
  fiber.Reset([&] {
    while (!stop) {
      Fiber::Yield();
    }
  });
  for (auto _ : state) {
    fiber.Run();  // one switch in, one switch out
  }
  stop = true;
  fiber.Run();
}
BENCHMARK(BM_FiberSwitchRoundTrip);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int> ring(64);
  for (auto _ : state) {
    ring.TryPush(1);
    int out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpscRingPushPop);

// Attaches a cycles-per-element counter computed from rdtsc around the
// timed loop, so the single-op vs batched comparison reads directly in the
// unit the dispatcher budget is written in (§3.1 talks cycles, not ns).
void SetCyclesPerElement(benchmark::State& state, std::uint64_t tsc_begin,
                         std::uint64_t tsc_end, std::size_t elements_per_iter) {
  const double elements =
      static_cast<double>(state.iterations()) * static_cast<double>(elements_per_iter);
  if (elements > 0.0) {
    state.counters["cycles_per_elem"] = static_cast<double>(tsc_end - tsc_begin) / elements;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(elements));
}

// One element per atomic pair: the pre-batching transfer cost. Compare with
// BM_SpscRingBatchTransfer at the same element count.
void BM_SpscRingSingleTransfer(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  SpscRing<int> ring(256);
  const std::uint64_t tsc_begin = ReadTsc();
  // concord-lint: allow-no-probe (bench driver loop on the bench thread, not handler code)
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) {
      ring.TryPush(static_cast<int>(i));
    }
    int out = 0;
    for (std::size_t i = 0; i < count; ++i) {
      ring.TryPop(&out);
    }
    benchmark::DoNotOptimize(out);
  }
  SetCyclesPerElement(state, tsc_begin, ReadTsc(), count);
}
BENCHMARK(BM_SpscRingSingleTransfer)->Arg(1)->Arg(8)->Arg(64);

// N elements published with one release store each way: the dispatcher's
// ingress-drain / JBSQ-refill transfer shape.
void BM_SpscRingBatchTransfer(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  SpscRing<int> ring(256);
  std::vector<int> in(count, 1);
  std::vector<int> out(count, 0);
  const std::uint64_t tsc_begin = ReadTsc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPushBatch(in.data(), count));
    benchmark::DoNotOptimize(ring.TryPopBatch(out.data(), count));
  }
  SetCyclesPerElement(state, tsc_begin, ReadTsc(), count);
}
BENCHMARK(BM_SpscRingBatchTransfer)->Arg(1)->Arg(8)->Arg(64);

// The pre-PR Submit() shape: take a mutex, bounds-check, pop a free-list
// node, push the pointer onto a shared deque (uncontended here, so this is
// the *floor* for the mutex design — contention only makes it worse).
void BM_MutexIngressSubmit(benchmark::State& state) {
  std::mutex mu;
  std::deque<int*> queue;
  std::vector<int*> free_list;
  std::vector<int> storage(256, 0);
  free_list.reserve(storage.size());
  for (int& slot : storage) {
    free_list.push_back(&slot);
  }
  const std::size_t capacity = storage.size();
  const std::uint64_t tsc_begin = ReadTsc();
  // concord-lint: allow-no-probe (bench driver loop on the bench thread, not handler code)
  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (queue.size() < capacity && !free_list.empty()) {
        int* request = free_list.back();
        free_list.pop_back();
        queue.push_back(request);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!queue.empty()) {
        free_list.push_back(queue.front());
        queue.pop_front();
      }
    }
  }
  SetCyclesPerElement(state, tsc_begin, ReadTsc(), 1);
}
BENCHMARK(BM_MutexIngressSubmit);

// The post-PR Submit() shape: pop a cached free pointer, push it onto the
// producer's private SPSC ring; the consumer side recycles it back. No lock
// in either direction.
void BM_RingIngressSubmit(benchmark::State& state) {
  SpscRing<int*> ingress(256);
  SpscRing<int*> recycle(256);
  std::vector<int*> local_free;
  std::vector<int> storage(256, 0);
  local_free.reserve(storage.size());
  for (int& slot : storage) {
    local_free.push_back(&slot);
  }
  const std::uint64_t tsc_begin = ReadTsc();
  // concord-lint: allow-no-probe (bench driver loop on the bench thread, not handler code)
  for (auto _ : state) {
    if (local_free.empty()) {
      local_free.resize(storage.size());
      const std::size_t refilled = recycle.TryPopBatch(local_free.data(), local_free.size());
      local_free.resize(refilled);
    }
    if (!local_free.empty()) {
      int* request = local_free.back();
      local_free.pop_back();
      ingress.TryPush(request);
    }
    int* adopted = nullptr;
    if (ingress.TryPop(&adopted)) {
      recycle.TryPush(adopted);
    }
  }
  SetCyclesPerElement(state, tsc_begin, ReadTsc(), 1);
}
BENCHMARK(BM_RingIngressSubmit);

void BM_SimulatorEvent(benchmark::State& state) {
  Simulator sim;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    sim.ScheduleAt(t, [] {});
    sim.Step();
  }
}
BENCHMARK(BM_SimulatorEvent);

void BM_DbGet(benchmark::State& state) {
  Db db;
  PopulateDb(&db, 15000, 64);  // the paper's 15k-key setup
  Rng rng(4);
  std::string value;
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(15000)));
    benchmark::DoNotOptimize(db.Get(Slice(key), &value));
  }
}
BENCHMARK(BM_DbGet);

void BM_DbPut(benchmark::State& state) {
  Db db;
  Rng rng(5);
  const std::string value(64, 'v');
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(15000)));
    db.Put(Slice(key), Slice(value));
  }
}
BENCHMARK(BM_DbPut);

void BM_DbScan15k(benchmark::State& state) {
  Db db;
  PopulateDb(&db, 15000, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ScanCount());
  }
}
BENCHMARK(BM_DbScan15k);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
