// Component microbenchmarks (google-benchmark): the building blocks' costs
// on the host. Cycle-level absolute numbers depend on the machine (and this
// container is shared), but the relative costs — probe vs rdtsc vs context
// switch — are the mechanism story of §3.1.

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/cycles.h"
#include "src/common/rng.h"
#include "src/kvstore/db.h"
#include "src/runtime/context.h"
#include "src/runtime/instrument.h"
#include "src/runtime/spsc_ring.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace concord {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(2);
  for (auto _ : state) {
    histogram.Record(rng.Exponential(1000.0));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram histogram;
  Rng rng(3);
  for (int i = 0; i < 1000000; ++i) {
    histogram.Record(rng.Exponential(1000.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Quantile(0.999));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_ProbeUnbound(benchmark::State& state) {
  SetProbeBinding({});
  for (auto _ : state) {
    CONCORD_PROBE();
  }
}
BENCHMARK(BM_ProbeUnbound);

void BM_ProbeBoundNoSignal(benchmark::State& state) {
  SignalLine line;
  struct State {
    SignalLine* signal;
  } probe_state{&line};
  ProbeBinding binding;
  binding.fn = [](void* arg) {
    auto* s = static_cast<State*>(arg);
    benchmark::DoNotOptimize(s->signal->word.load(std::memory_order_acquire));
  };
  binding.arg = &probe_state;
  SetProbeBinding(binding);
  for (auto _ : state) {
    CONCORD_PROBE();
  }
  SetProbeBinding({});
}
BENCHMARK(BM_ProbeBoundNoSignal);

void BM_Rdtsc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadTsc());
  }
}
BENCHMARK(BM_Rdtsc);

void BM_FiberSwitchRoundTrip(benchmark::State& state) {
  Fiber fiber;
  bool stop = false;
  fiber.Reset([&] {
    while (!stop) {
      Fiber::Yield();
    }
  });
  for (auto _ : state) {
    fiber.Run();  // one switch in, one switch out
  }
  stop = true;
  fiber.Run();
}
BENCHMARK(BM_FiberSwitchRoundTrip);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int> ring(64);
  for (auto _ : state) {
    ring.TryPush(1);
    int out = 0;
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SimulatorEvent(benchmark::State& state) {
  Simulator sim;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    sim.ScheduleAt(t, [] {});
    sim.Step();
  }
}
BENCHMARK(BM_SimulatorEvent);

void BM_DbGet(benchmark::State& state) {
  Db db;
  PopulateDb(&db, 15000, 64);  // the paper's 15k-key setup
  Rng rng(4);
  std::string value;
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(15000)));
    benchmark::DoNotOptimize(db.Get(Slice(key), &value));
  }
}
BENCHMARK(BM_DbGet);

void BM_DbPut(benchmark::State& state) {
  Db db;
  Rng rng(5);
  const std::string value(64, 'v');
  char key[32];
  for (auto _ : state) {
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(rng.UniformU64(15000)));
    db.Put(Slice(key), Slice(value));
  }
}
BENCHMARK(BM_DbPut);

void BM_DbScan15k(benchmark::State& state) {
  Db db;
  PopulateDb(&db, 15000, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ScanCount());
  }
}
BENCHMARK(BM_DbScan15k);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
