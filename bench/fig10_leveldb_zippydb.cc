// Figure 10: the LevelDB server under Meta's ZippyDB production mix
// (78% GET, 13% PUT, 6% DELETE, 3% SCAN), quantum 5us, 14 workers.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 10",
                    "p99.9 slowdown vs load, LevelDB with the ZippyDB mix, q=5us, 14 workers",
                    "Concord sustains ~19% more load than Shinjuku at the 50x SLO, in line "
                    "with Fig. 7 (similar dispersion); Persephone-FCFS crosses much earlier");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbZippyDb);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  const std::vector<SystemConfig> systems = {
      MakePersephoneFcfs(14),
      MakeShinjuku(14, UsToNs(5.0)),
      MakeConcord(14, UsToNs(5.0)),
  };
  RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(50.0, 850.0, 11), params);
  PrintSloCrossovers(systems, costs, *spec.distribution, 25.0, 870.0, params, 1);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
