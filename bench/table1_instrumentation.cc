// Table 1: overhead and timeliness of Concord's instrumentation across the
// 24 SPLASH-2 / Phoenix / PARSEC programs, compared to Compiler Interrupts.
//
// Each program is a synthetic structural stand-in (see
// src/compiler/programs.h); the probe-placement pass and instrumentation
// model compute Concord's overhead and the preemption-delay stddev from the
// program's shape. The Compiler-Interrupts column reproduces the published
// numbers, as the paper itself does.

#include <iostream>

#include "bench/figure_common.h"
#include "src/compiler/instrumentation_model.h"
#include "src/compiler/probe_placement.h"
#include "src/compiler/programs.h"
#include "src/stats/table.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Table 1",
                    "Instrumentation overhead and preemption timeliness (q=5us) per program",
                    "Concord averages ~1% overhead (sometimes negative, thanks to loop "
                    "unrolling), ~13x below Compiler Interrupts; stddev of the achieved "
                    "quantum stays under 2us everywhere");

  TablePrinter table({"program", "suite", "concord_overhead", "paper_concord", "ci_overhead",
                      "stddev_us", "paper_stddev_us", "p99_delay_us"});
  double concord_sum = 0.0;
  double ci_sum = 0.0;
  double concord_max = -1e9;
  double ci_max = -1e9;
  double stddev_max = 0.0;
  for (const Table1Program& program : Table1Programs()) {
    const InstrumentationReport report = AnalyzeProgram(program.ir, PlacementConfig{});
    const OverheadEstimate overhead = EstimateOverhead(report, ProbeCosts{}, program.ir.ipc);
    const TimelinessEstimate timeliness = EstimateTimeliness(report);
    concord_sum += overhead.coop_fraction;
    ci_sum += program.paper_ci_overhead_pct / 100.0;
    concord_max = std::max(concord_max, overhead.coop_fraction);
    ci_max = std::max(ci_max, program.paper_ci_overhead_pct / 100.0);
    stddev_max = std::max(stddev_max, timeliness.stddev_ns / 1000.0);
    table.AddRow({program.name, program.suite, TablePrinter::Percent(overhead.coop_fraction, 2),
                  TablePrinter::Percent(program.paper_concord_overhead_pct / 100.0, 1),
                  TablePrinter::Percent(program.paper_ci_overhead_pct / 100.0, 0),
                  TablePrinter::Fixed(timeliness.stddev_ns / 1000.0, 2),
                  TablePrinter::Fixed(program.paper_stddev_us, 2),
                  TablePrinter::Fixed(timeliness.p99_delay_ns / 1000.0, 2)});
  }
  const double n = static_cast<double>(Table1Programs().size());
  table.AddRow({"Average", "-", TablePrinter::Percent(concord_sum / n, 2), "1.0%",
                TablePrinter::Percent(ci_sum / n, 1), "-", "0.65", "-"});
  table.AddRow({"Maximum", "-", TablePrinter::Percent(concord_max, 2), "6.7%",
                TablePrinter::Percent(ci_max, 0), TablePrinter::Fixed(stddev_max, 2), "1.80",
                "-"});
  table.Print(std::cout);
  std::cout << "\nCI-to-Concord average overhead ratio: "
            << TablePrinter::Fixed(ci_sum / std::max(concord_sum, 1e-9), 1)
            << "x (paper: 13.1x)\n";
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
