// Figure 7: p99.9 slowdown vs load for Bimodal(99.5:0.5, 0.5:500) (Meta
// USR-like), 14 workers, quanta of 5us and 2us.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run(int argc, char** argv) {
  PrintFigureHeader("Figure 7",
                    "p99.9 slowdown vs load, Bimodal(99.5:0.5, 0.5:500) us, 14 workers",
                    "Concord sustains ~20% more load than Shinjuku at the 50x SLO for q=5us "
                    "and ~52% more for q=2us; Persephone-FCFS crosses much earlier");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(100000, argc, argv);

  for (double q_us : {5.0, 2.0}) {
    std::cout << "--- scheduling quantum " << q_us << " us ---\n";
    // EDF deadlines at 10x each class's clean service (0.5us / 500us modes).
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(q_us)),
        MakeConcord(14, UsToNs(q_us)),
        MakeEdfNonPreemptive(14, {UsToNs(5.0), UsToNs(5000.0)}),
        MakeApproxSrpt(14),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(300.0, 3600.0, 12), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 100.0, 3750.0, params,
                       /*baseline_index=*/1);
  }

  // Same heavy tail on the real runtime: 1-in-200 requests run the 500us
  // mode (3.0us mean), open-loop at ~333 krps against ~667 krps of 2-worker
  // capacity — the shape that separates preemptive from FCFS policies.
  RunLivePolicyComparison(/*quantum_us=*/5.0, /*short_us=*/0.5, /*long_us=*/500.0,
                          /*long_every=*/200, /*request_count=*/20000, /*gap_us=*/3.0, argc,
                          argv);
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Run(argc, argv);
  return 0;
}
