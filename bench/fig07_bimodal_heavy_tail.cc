// Figure 7: p99.9 slowdown vs load for Bimodal(99.5:0.5, 0.5:500) (Meta
// USR-like), 14 workers, quanta of 5us and 2us.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 7",
                    "p99.9 slowdown vs load, Bimodal(99.5:0.5, 0.5:500) us, 14 workers",
                    "Concord sustains ~20% more load than Shinjuku at the 50x SLO for q=5us "
                    "and ~52% more for q=2us; Persephone-FCFS crosses much earlier");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount();

  for (double q_us : {5.0, 2.0}) {
    std::cout << "--- scheduling quantum " << q_us << " us ---\n";
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(q_us)),
        MakeConcord(14, UsToNs(q_us)),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(300.0, 3600.0, 12), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 100.0, 3750.0, params,
                       /*baseline_index=*/1);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
