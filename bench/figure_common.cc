#include "bench/figure_common.h"

#include <cstdlib>
#include <iostream>

#include "src/stats/table.h"

namespace concord {

std::size_t BenchRequestCount(std::size_t default_count) {
  const char* env = std::getenv("CONCORD_BENCH_REQUESTS");
  if (env != nullptr) {
    const long value = std::atol(env);
    if (value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  return default_count;
}

void PrintFigureHeader(const std::string& figure, const std::string& description,
                       const std::string& paper_expectation) {
  std::cout << "=== " << figure << " ===\n"
            << description << "\n"
            << "Paper expectation: " << paper_expectation << "\n\n";
}

void RunSlowdownSweep(const std::vector<SystemConfig>& systems, const CostModel& costs,
                      const ServiceDistribution& distribution,
                      const std::vector<double>& loads_krps, const ExperimentParams& params) {
  std::vector<std::string> headers = {"load_krps"};
  for (const SystemConfig& system : systems) {
    headers.push_back("p999_slowdown[" + system.name + "]");
  }
  TablePrinter table(std::move(headers));
  std::vector<std::vector<LoadPoint>> sweeps;
  sweeps.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    sweeps.push_back(RunLoadSweep(system, costs, distribution, loads_krps, params));
  }
  for (std::size_t i = 0; i < loads_krps.size(); ++i) {
    std::vector<std::string> row = {TablePrinter::Fixed(loads_krps[i], 1)};
    for (const auto& sweep : sweeps) {
      row.push_back(TablePrinter::Fixed(sweep[i].p999_slowdown, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintSloCrossovers(const std::vector<SystemConfig>& systems, const CostModel& costs,
                        const ServiceDistribution& distribution, double lo_krps, double hi_krps,
                        const ExperimentParams& params, std::size_t baseline_index) {
  TablePrinter table({"system", "max_load_krps@50x", "vs_" + systems[baseline_index].name});
  std::vector<double> crossovers;
  crossovers.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    crossovers.push_back(FindMaxLoadUnderSlo(system, costs, distribution, kPaperSloSlowdown,
                                             lo_krps, hi_krps, params));
  }
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const double ratio = crossovers[i] / crossovers[baseline_index] - 1.0;
    table.AddRow({systems[i].name, TablePrinter::Fixed(crossovers[i], 1),
                  i == baseline_index ? "-" : TablePrinter::Percent(ratio, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace concord
