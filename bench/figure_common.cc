#include "bench/figure_common.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "src/runtime/runtime.h"
#include "src/runtime/sharded_runtime.h"
#include "src/stats/slowdown.h"
#include "src/stats/table.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics_sampler.h"

namespace concord {

std::size_t BenchRequestCount(std::size_t default_count, int argc, char** argv) {
  const long long value = telemetry::IntFromFlagOrEnv(argc, argv, "--requests=",
                                                      "CONCORD_BENCH_REQUESTS",
                                                      static_cast<long long>(default_count));
  return value > 0 ? static_cast<std::size_t>(value) : default_count;
}

RuntimeSelection BenchSelection(int argc, char** argv) {
  return SelectionFromArgsOrEnv(argc, argv);
}

void PrintFigureHeader(const std::string& figure, const std::string& description,
                       const std::string& paper_expectation) {
  std::cout << "=== " << figure << " ===\n"
            << description << "\n"
            << "Paper expectation: " << paper_expectation << "\n\n";
}

void RunSlowdownSweep(const std::vector<SystemConfig>& systems, const CostModel& costs,
                      const ServiceDistribution& distribution,
                      const std::vector<double>& loads_krps, const ExperimentParams& params) {
  std::vector<std::string> headers = {"load_krps"};
  for (const SystemConfig& system : systems) {
    headers.push_back("p999_slowdown[" + system.name + "]");
  }
  TablePrinter table(std::move(headers));
  std::vector<std::vector<LoadPoint>> sweeps;
  sweeps.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    sweeps.push_back(RunLoadSweep(system, costs, distribution, loads_krps, params));
  }
  for (std::size_t i = 0; i < loads_krps.size(); ++i) {
    std::vector<std::string> row = {TablePrinter::Fixed(loads_krps[i], 1)};
    for (const auto& sweep : sweeps) {
      row.push_back(TablePrinter::Fixed(sweep[i].p999_slowdown, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintSloCrossovers(const std::vector<SystemConfig>& systems, const CostModel& costs,
                        const ServiceDistribution& distribution, double lo_krps, double hi_krps,
                        const ExperimentParams& params, std::size_t baseline_index) {
  TablePrinter table({"system", "max_load_krps@50x", "vs_" + systems[baseline_index].name});
  std::vector<double> crossovers;
  crossovers.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    crossovers.push_back(FindMaxLoadUnderSlo(system, costs, distribution, kPaperSloSlowdown,
                                             lo_krps, hi_krps, params));
  }
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const double ratio = crossovers[i] / crossovers[baseline_index] - 1.0;
    table.AddRow({systems[i].name, TablePrinter::Fixed(crossovers[i], 1),
                  i == baseline_index ? "-" : TablePrinter::Percent(ratio, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count) {
  return RunLiveSpinTelemetry(quantum_us, service_us, request_count, worker_count, 0, nullptr);
}

telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count, int argc,
                                                  char** argv) {
  const std::string trace_path = telemetry::TraceOutPath(argc, argv);
  const std::string metrics_path = telemetry::MetricsOutPath(argc, argv);
  const RuntimeSelection selection = BenchSelection(argc, argv);
  ShardedRuntime::Options options;
  options.shard.worker_count = worker_count;
  options.shard.quantum_us = quantum_us;
  options.shard.jbsq_depth = 2;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  options.allowed_cpus = selection.cpus;
  if (!trace_path.empty()) {
    // Bounded but generous: ~4 records/request for typical live sections, so
    // even the largest figure run fits with zero drops (any excess is
    // exactly counted and reported by concord_trace).
    options.shard.trace_buffer_capacity = std::size_t{1} << 18;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [service_us](const RequestView&) { SpinWithProbesUs(service_us); };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (!metrics_path.empty()) {
    trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = telemetry::MetricsWindowMs(argc, argv);
    if (metrics_path != "-") {
      sampler_options.exposition_path = metrics_path + ".prom";
    }
    sampler = std::make_unique<trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  // Submit the whole batch up front: the backlog keeps "other work pending"
  // true, so the dispatcher actually requests preemptions (§3.1).
  for (int i = 0; i < request_count; ++i) {
    while (!runtime.Submit(static_cast<std::uint64_t>(i), 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    sampler->WriteSeries(metrics_path);
  }
  runtime.Shutdown();
  if (!trace_path.empty()) {
    // After Shutdown the dispatchers' final ring drains have run: every
    // capture is complete up to its exactly-counted drops. One file per
    // shard ("out.json" -> "out.shard1.json"...), each independently
    // checkable by concord_trace; single-shard keeps the plain path.
    for (int s = 0; s < runtime.shard_count(); ++s) {
      trace::WriteChromeTrace(
          runtime.GetShardTrace(s),
          telemetry::ShardedOutPath(trace_path, s, runtime.shard_count()));
    }
  }
  return snapshot;
}

// concord-lint: allow-no-probe (bench harness; drives the runtime from the main thread)
void RunLivePolicyComparison(double quantum_us, double short_us, double long_us, int long_every,
                             int request_count, double gap_us, int argc, char** argv) {
  const RuntimeSelection selection = BenchSelection(argc, argv);
  std::cout << "--- live policy head-to-head (real runtime, host-scaled: 2 workers/shard, "
            << selection.shard_count << " shard" << (selection.shard_count == 1 ? "" : "s")
            << ", q=" << quantum_us << "us) ---\n";
  TablePrinter table({"policy", "completed", "p50_slowdown", "p99_slowdown", "p999_slowdown"});
  // Deadlines at 10x clean service: tight enough that EDF's ordering tracks
  // size (short requests get earlier deadlines), loose enough that a busy
  // host still mostly meets them.
  const double short_deadline_us = short_us * 10.0;
  const double long_deadline_us = long_us * 10.0;
  for (PolicyKind policy :
       {PolicyKind::kFcfsNonPreemptive, PolicyKind::kSingleQueuePreemptive,
        PolicyKind::kConcordJbsq, PolicyKind::kEdfNonPreemptive, PolicyKind::kApproxSrpt,
        PolicyKind::kConcordJbsqAdaptive}) {
    ShardedRuntime::Options options;
    options.shard.worker_count = 2;
    options.shard.quantum_us = quantum_us;
    options.shard.jbsq_depth = 2;
    options.shard.policy = policy;
    options.shard_count = selection.shard_count;
    options.placement = selection.placement;
    options.allowed_cpus = selection.cpus;
    SlowdownTracker tracker;
    std::uint64_t completed = 0;
    std::mutex complete_mu;  // on_complete runs on every shard's dispatcher
    double tsc_ghz = 1.0;    // written once before the first Submit
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [short_us, long_us](const RequestView& view) {
      SpinWithProbesUs(view.request_class == 1 ? long_us : short_us);
    };
    callbacks.on_complete = [&](const RequestView& view, std::uint64_t latency_tsc) {
      const double latency_ns = static_cast<double>(latency_tsc) / tsc_ghz;
      const double service_ns = (view.request_class == 1 ? long_us : short_us) * 1000.0;
      std::lock_guard<std::mutex> lock(complete_mu);
      ++completed;
      tracker.Record(latency_ns, service_ns, view.request_class);
    };
    ShardedRuntime runtime(options, callbacks);
    runtime.Start();
    tsc_ghz = runtime.tsc_ghz();
    // Open-loop pacing: a fixed inter-arrival gap, so the percentiles
    // measure scheduling rather than run length (same discipline as the
    // model's open-loop generator).
    const double gap_ns = gap_us * 1000.0;
    const auto pace_start = std::chrono::steady_clock::now();
    for (int i = 0; i < request_count; ++i) {
      const double due_ns = static_cast<double>(i) * gap_ns;
      // concord-lint: allow-no-probe (open-loop pacing loop on the main thread, not handler code)
      for (;;) {
        const double elapsed_ns =
            std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - pace_start)
                .count();
        if (elapsed_ns >= due_ns) {
          break;
        }
        std::this_thread::yield();
      }
      const int request_class = (long_every > 0 && i % long_every == long_every - 1) ? 1 : 0;
      const double deadline_us = request_class == 1 ? long_deadline_us : short_deadline_us;
      while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr, deadline_us)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    runtime.Shutdown();
    table.AddRow({PolicyKindName(policy), std::to_string(completed),
                  TablePrinter::Fixed(tracker.QuantileSlowdown(0.50), 1),
                  TablePrinter::Fixed(tracker.QuantileSlowdown(0.99), 1),
                  TablePrinter::Fixed(tracker.P999Slowdown(), 1)});
  }
  table.Print(std::cout);
  std::cout << "(live curves are host-scaled, not the paper's 14-worker testbed; compare "
               "shapes across policies, not absolute values against the model tables)\n\n";
}

void PrintLiveCounterCheck(const telemetry::TelemetrySnapshot& snapshot, double quantum_us,
                           double service_us) {
  if (!snapshot.enabled) {
    std::cout << "live counters: telemetry compiled out (CONCORD_TELEMETRY=OFF)\n\n";
    return;
  }
  const telemetry::WorkerSnapshot totals = snapshot.Totals();
  const auto completed = snapshot.RequestsCompleted();
  const double model_preemptions = std::floor(service_us / quantum_us);
  const double live_preemptions =
      completed > 0 ? static_cast<double>(totals.probe_yields) / static_cast<double>(completed)
                    : 0.0;
  TablePrinter table({"live counter", "value"});
  table.AddRow({"requests completed", std::to_string(completed)});
  table.AddRow({"probe polls", std::to_string(totals.probe_polls)});
  table.AddRow({"preemptions requested", std::to_string(totals.preemptions_requested)});
  table.AddRow({"preemptions honored", std::to_string(totals.probe_yields)});
  table.AddRow({"work-conserving quanta", std::to_string(snapshot.dispatcher.quanta_run)});
  table.AddRow({"preemptions/request (live)", TablePrinter::Fixed(live_preemptions, 2)});
  table.AddRow({"preemptions/request (model floor(S/q))",
                TablePrinter::Fixed(model_preemptions, 2)});
  table.Print(std::cout);
  std::cout << "(live counts trail the model on small or contended hosts: a "
               "request that outlives its quantum while the scheduler starves "
               "the dispatcher is preempted late or not at all)\n\n";
}

void PrintLiveAnatomy(const telemetry::TelemetrySnapshot& snapshot) {
  if (!snapshot.enabled) {
    std::cout << "latency anatomy: telemetry compiled out (CONCORD_TELEMETRY=OFF)\n\n";
    return;
  }
  if (snapshot.anatomy.TotalCompleted() == 0) {
    std::cout << "latency anatomy: no completed requests folded\n\n";
    return;
  }
  std::cout << "latency anatomy (mean us per stage; stages partition "
               "[arrival, complete] exactly):\n";
  TablePrinter table({"class", "requests", "ingress", "queue", "inbox", "service", "requeue",
                      "drain", "latency"});
  for (std::size_t slot = 0; slot < telemetry::kAnatomyClassSlots; ++slot) {
    const telemetry::AnatomyClassSnapshot& cls = snapshot.anatomy.classes[slot];
    if (cls.completed == 0) {
      continue;
    }
    double latency_us = 0.0;
    std::vector<std::string> row{std::to_string(slot), std::to_string(cls.completed)};
    for (int stage = 0; stage < telemetry::kAnatomyStages; ++stage) {
      const double mean_us = snapshot.anatomy.MeanStageUs(slot, stage, snapshot.tsc_ghz);
      latency_us += mean_us;
      row.push_back(TablePrinter::Fixed(mean_us, 2));
    }
    row.push_back(TablePrinter::Fixed(latency_us, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void MaybeWriteTelemetry(const telemetry::TelemetrySnapshot& snapshot, int argc, char** argv) {
  telemetry::MaybeExportSnapshot(snapshot, argc, argv);
}

}  // namespace concord
