#include "bench/figure_common.h"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>

#include "src/runtime/runtime.h"
#include "src/stats/table.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics_sampler.h"

namespace concord {

std::size_t BenchRequestCount(std::size_t default_count) {
  const char* env = std::getenv("CONCORD_BENCH_REQUESTS");
  if (env != nullptr) {
    const long value = std::atol(env);
    if (value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  return default_count;
}

void PrintFigureHeader(const std::string& figure, const std::string& description,
                       const std::string& paper_expectation) {
  std::cout << "=== " << figure << " ===\n"
            << description << "\n"
            << "Paper expectation: " << paper_expectation << "\n\n";
}

void RunSlowdownSweep(const std::vector<SystemConfig>& systems, const CostModel& costs,
                      const ServiceDistribution& distribution,
                      const std::vector<double>& loads_krps, const ExperimentParams& params) {
  std::vector<std::string> headers = {"load_krps"};
  for (const SystemConfig& system : systems) {
    headers.push_back("p999_slowdown[" + system.name + "]");
  }
  TablePrinter table(std::move(headers));
  std::vector<std::vector<LoadPoint>> sweeps;
  sweeps.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    sweeps.push_back(RunLoadSweep(system, costs, distribution, loads_krps, params));
  }
  for (std::size_t i = 0; i < loads_krps.size(); ++i) {
    std::vector<std::string> row = {TablePrinter::Fixed(loads_krps[i], 1)};
    for (const auto& sweep : sweeps) {
      row.push_back(TablePrinter::Fixed(sweep[i].p999_slowdown, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintSloCrossovers(const std::vector<SystemConfig>& systems, const CostModel& costs,
                        const ServiceDistribution& distribution, double lo_krps, double hi_krps,
                        const ExperimentParams& params, std::size_t baseline_index) {
  TablePrinter table({"system", "max_load_krps@50x", "vs_" + systems[baseline_index].name});
  std::vector<double> crossovers;
  crossovers.reserve(systems.size());
  for (const SystemConfig& system : systems) {
    crossovers.push_back(FindMaxLoadUnderSlo(system, costs, distribution, kPaperSloSlowdown,
                                             lo_krps, hi_krps, params));
  }
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const double ratio = crossovers[i] / crossovers[baseline_index] - 1.0;
    table.AddRow({systems[i].name, TablePrinter::Fixed(crossovers[i], 1),
                  i == baseline_index ? "-" : TablePrinter::Percent(ratio, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count) {
  return RunLiveSpinTelemetry(quantum_us, service_us, request_count, worker_count, 0, nullptr);
}

telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count, int argc,
                                                  char** argv) {
  const std::string trace_path = telemetry::TraceOutPath(argc, argv);
  const std::string metrics_path = telemetry::MetricsOutPath(argc, argv);
  Runtime::Options options;
  options.worker_count = worker_count;
  options.quantum_us = quantum_us;
  options.jbsq_depth = 2;
  if (!trace_path.empty()) {
    // Bounded but generous: ~4 records/request for typical live sections, so
    // even the largest figure run fits with zero drops (any excess is
    // exactly counted and reported by concord_trace).
    options.trace_buffer_capacity = std::size_t{1} << 18;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [service_us](const RequestView&) { SpinWithProbesUs(service_us); };
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (!metrics_path.empty()) {
    trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = telemetry::MetricsWindowMs(argc, argv);
    if (metrics_path != "-") {
      sampler_options.exposition_path = metrics_path + ".prom";
    }
    sampler = std::make_unique<trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  // Submit the whole batch up front: the backlog keeps "other work pending"
  // true, so the dispatcher actually requests preemptions (§3.1).
  for (int i = 0; i < request_count; ++i) {
    while (!runtime.Submit(static_cast<std::uint64_t>(i), 0, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    sampler->WriteSeries(metrics_path);
  }
  runtime.Shutdown();
  if (!trace_path.empty()) {
    // After Shutdown the dispatcher's final ring drain has run: the capture
    // is complete up to its exactly-counted drops.
    trace::WriteChromeTrace(runtime.GetTrace(), trace_path);
  }
  return snapshot;
}

void PrintLiveCounterCheck(const telemetry::TelemetrySnapshot& snapshot, double quantum_us,
                           double service_us) {
  if (!snapshot.enabled) {
    std::cout << "live counters: telemetry compiled out (CONCORD_TELEMETRY=OFF)\n\n";
    return;
  }
  const telemetry::WorkerSnapshot totals = snapshot.Totals();
  const auto completed = snapshot.RequestsCompleted();
  const double model_preemptions = std::floor(service_us / quantum_us);
  const double live_preemptions =
      completed > 0 ? static_cast<double>(totals.probe_yields) / static_cast<double>(completed)
                    : 0.0;
  TablePrinter table({"live counter", "value"});
  table.AddRow({"requests completed", std::to_string(completed)});
  table.AddRow({"probe polls", std::to_string(totals.probe_polls)});
  table.AddRow({"preemptions requested", std::to_string(totals.preemptions_requested)});
  table.AddRow({"preemptions honored", std::to_string(totals.probe_yields)});
  table.AddRow({"work-conserving quanta", std::to_string(snapshot.dispatcher.quanta_run)});
  table.AddRow({"preemptions/request (live)", TablePrinter::Fixed(live_preemptions, 2)});
  table.AddRow({"preemptions/request (model floor(S/q))",
                TablePrinter::Fixed(model_preemptions, 2)});
  table.Print(std::cout);
  std::cout << "(live counts trail the model on small or contended hosts: a "
               "request that outlives its quantum while the scheduler starves "
               "the dispatcher is preempted late or not at all)\n\n";
}

void MaybeWriteTelemetry(const telemetry::TelemetrySnapshot& snapshot, int argc, char** argv) {
  telemetry::MaybeExportSnapshot(snapshot, argc, argv);
}

}  // namespace concord
