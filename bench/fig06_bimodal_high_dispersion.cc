// Figure 6: p99.9 slowdown vs load for Bimodal(50:1, 50:100) (YCSB-A-like),
// 14 workers, quanta of 5us and 2us, for Persephone-FCFS, Shinjuku and
// Concord.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run(int argc, char** argv) {
  PrintFigureHeader("Figure 6",
                    "p99.9 slowdown vs load, Bimodal(50:1, 50:100) us, 14 workers",
                    "Concord sustains ~18% more load than Shinjuku at the 50x SLO for q=5us "
                    "and ~45% more for q=2us; Persephone-FCFS crosses earlier");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(100000, argc, argv);

  for (double q_us : {5.0, 2.0}) {
    std::cout << "--- scheduling quantum " << q_us << " us ---\n";
    // EDF deadlines at 10x each class's clean service (1us / 100us modes),
    // the same ratio the live comparison below injects.
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(q_us)),
        MakeConcord(14, UsToNs(q_us)),
        MakeEdfNonPreemptive(14, {UsToNs(10.0), UsToNs(1000.0)}),
        MakeApproxSrpt(14),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(25.0, 275.0, 11), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 20.0, 290.0, params,
                       /*baseline_index=*/1);
  }

  // Same mix on the real runtime: every second request is the 100us mode,
  // open-loop at ~25 krps against ~39.6 krps of 2-worker capacity.
  RunLivePolicyComparison(/*quantum_us=*/5.0, /*short_us=*/1.0, /*long_us=*/100.0,
                          /*long_every=*/2, /*request_count=*/5000, /*gap_us=*/40.0, argc, argv);
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Run(argc, argv);
  return 0;
}
