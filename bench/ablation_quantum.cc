// Ablation: the scheduling quantum.
//
// Smaller quanta bound short requests' queueing behind long ones more
// tightly but multiply preemption overhead. Concord's cheap preemption keeps
// small quanta affordable (its crossover degrades slowly as q shrinks);
// Shinjuku's IPI tax makes them expensive — the gap the whole paper is
// about, as one sweep.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Ablation: scheduling quantum",
                    "LevelDB 50% GET / 50% SCAN, 14 workers, quanta from 1us to 50us",
                    "Concord's sustainable load is nearly flat in q; Shinjuku's collapses "
                    "as q shrinks (per-quantum IPI + handoff costs)");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(40000);

  TablePrinter table({"quantum_us", "shinjuku_max_krps", "concord_max_krps", "concord_gain"});
  for (double q_us : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    const double shinjuku =
        FindMaxLoadUnderSlo(MakeShinjuku(14, UsToNs(q_us)), costs, *spec.distribution,
                            kPaperSloSlowdown, 2.0, 58.0, params);
    const double concord =
        FindMaxLoadUnderSlo(MakeConcord(14, UsToNs(q_us)), costs, *spec.distribution,
                            kPaperSloSlowdown, 2.0, 58.0, params);
    table.AddRow({TablePrinter::Fixed(q_us, 0), TablePrinter::Fixed(shinjuku, 1),
                  TablePrinter::Fixed(concord, 1),
                  TablePrinter::Percent(concord / shinjuku - 1.0, 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
