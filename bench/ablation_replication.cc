// Ablation: multi-dispatcher replication (§6).
//
// The paper's proposed fix for the single-dispatcher bottleneck: several
// single-dispatcher instances over disjoint worker sets. Two regimes:
//  - dispatcher-bound workloads (short fixed service, fast NIC): replication
//    multiplies dispatch capacity and raises the sustainable load;
//  - worker-bound, high-dispersion workloads: replication only fragments
//    the worker pool and hurts the tail (less statistical multiplexing).

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/replication.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Ablation: multi-dispatcher replication",
                    "Concord split into N instances over 14 workers total",
                    "replication helps when the dispatcher is the bottleneck and hurts the "
                    "tail when the workers are");

  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  {
    std::cout << "--- dispatcher-bound: Fixed(1us), fast NIC (networker 80ns), q=100us ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
    CostModel costs = DefaultCosts();
    costs.networker_ns = 80.0;  // per-instance NIC queue (RSS)
    const SystemConfig config = MakeConcordNoDispatcherWork(14, UsToNs(100.0));
    TablePrinter table({"instances", "workers_each", "max_total_krps@50x"});
    for (int instances : {1, 2, 7}) {
      const double crossover =
          FindReplicatedMaxLoadUnderSlo(config, costs, *spec.distribution, kPaperSloSlowdown,
                                        500.0, 13500.0, instances, 14, params);
      table.AddRow({std::to_string(instances), std::to_string(14 / instances),
                    TablePrinter::Fixed(crossover, 0)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "--- worker-bound: Bimodal(50:1, 50:100), q=5us ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
    const CostModel costs = DefaultCosts();
    const SystemConfig config = MakeConcord(14, UsToNs(5.0));
    TablePrinter table({"instances", "workers_each", "p999@160krps", "max_total_krps@50x"});
    for (int instances : {1, 2, 7}) {
      const ReplicatedRunResult point = RunReplicatedLoadPoint(
          config, costs, *spec.distribution, 160.0, instances, 14, params);
      const double crossover =
          FindReplicatedMaxLoadUnderSlo(config, costs, *spec.distribution, kPaperSloSlowdown,
                                        20.0, 290.0, instances, 14, params);
      table.AddRow({std::to_string(instances), std::to_string(14 / instances),
                    TablePrinter::Fixed(point.aggregate.p999_slowdown, 1),
                    TablePrinter::Fixed(crossover, 1)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
