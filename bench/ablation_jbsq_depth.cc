// Ablation: the JBSQ bound k (§3.2).
//
// Two regimes, teased apart:
//  - WITHOUT preemption, the synchronous single queue pays its per-request
//    handshake in sustainable load; bounded queues recover it, and because
//    the dispatcher pushes to the *shortest* queue, extra depth beyond what
//    hides the communication delay changes little.
//  - WITH Concord's preemption, every depth improves further: queued shorts
//    get CPU within a quantum even when committed behind a long request.
// Net: k=2 captures the benefit, deeper queues buy nothing — the paper's
// choice (§3.2).

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

SystemConfig JbsqNoPreempt(int depth) {
  SystemConfig config = MakeConcordNoDispatcherWork(14, UsToNs(5.0), depth);
  config.name = "JBSQ(" + std::to_string(depth) + ") no-preempt";
  config.preempt = PreemptMechanism::kNone;
  config.instrumented_workers = false;
  return config;
}

void Run() {
  PrintFigureHeader("Ablation: JBSQ depth k",
                    "Bimodal(99.5:0.5, 0.5:500), 14 workers; depth sweep with and without "
                    "preemption (q=5us)",
                    "the synchronous single queue pays its handshake in sustainable load; "
                    "bounded queues recover it, and with shortest-queue dispatch extra "
                    "depth beyond k=2 buys nothing (paper §3.2: k=2 suffices, larger k "
                    "cannot help) — adding co-op preemption lifts every depth further");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);
  const double probe_load = 1200.0;  // ~40% utilization: the balancing regime

  {
    std::cout << "--- without preemption ---\n";
    TablePrinter table({"queue", "p999@1200krps", "max_load_krps@50x"});
    {
      const SystemConfig sync_sq = MakePersephoneFcfs(14);
      const double p999 =
          RunLoadPoint(sync_sq, costs, *spec.distribution, probe_load, params).p999_slowdown;
      const double crossover = FindMaxLoadUnderSlo(sync_sq, costs, *spec.distribution,
                                                   kPaperSloSlowdown, 100.0, 3750.0, params);
      table.AddRow({"sync single queue", TablePrinter::Fixed(p999, 1),
                    TablePrinter::Fixed(crossover, 1)});
    }
    for (int depth : {1, 2, 4, 8}) {
      const SystemConfig config = JbsqNoPreempt(depth);
      const double p999 =
          RunLoadPoint(config, costs, *spec.distribution, probe_load, params).p999_slowdown;
      const double crossover = FindMaxLoadUnderSlo(config, costs, *spec.distribution,
                                                   kPaperSloSlowdown, 100.0, 3750.0, params);
      table.AddRow({config.name, TablePrinter::Fixed(p999, 1),
                    TablePrinter::Fixed(crossover, 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "--- with co-op preemption (q=5us) ---\n";
    TablePrinter table({"queue", "p999@1200krps", "max_load_krps@50x"});
    for (int depth : {1, 2, 4, 8}) {
      const SystemConfig config = MakeConcordNoDispatcherWork(14, UsToNs(5.0), depth);
      const double p999 =
          RunLoadPoint(config, costs, *spec.distribution, probe_load, params).p999_slowdown;
      const double crossover = FindMaxLoadUnderSlo(config, costs, *spec.distribution,
                                                   kPaperSloSlowdown, 100.0, 3750.0, params);
      table.AddRow({"JBSQ(" + std::to_string(depth) + ")+co-op",
                    TablePrinter::Fixed(p999, 1), TablePrinter::Fixed(crossover, 1)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
