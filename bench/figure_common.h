// Shared plumbing for the figure-regeneration benches: environment-tunable
// request counts, slowdown-vs-load sweeps and SLO-crossover summaries.

#ifndef CONCORD_BENCH_FIGURE_COMMON_H_
#define CONCORD_BENCH_FIGURE_COMMON_H_

#include <string>
#include <vector>

#include "src/model/costs.h"
#include "src/model/experiment.h"
#include "src/runtime/policy.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/distribution.h"

namespace concord {

// Requests per load point; override with --requests= or
// CONCORD_BENCH_REQUESTS=<n>.
std::size_t BenchRequestCount(std::size_t default_count = 100000, int argc = 0,
                              char** argv = nullptr);

// The shared runtime selection every bench binary honors:
// --policy=concord-jbsq|single-queue|fcfs, --shards=N, --placement=rr|jsq
// (env: CONCORD_POLICY / CONCORD_SHARDS / CONCORD_PLACEMENT). Thin wrapper
// over SelectionFromArgsOrEnv so bench code has one obvious entry point.
RuntimeSelection BenchSelection(int argc, char** argv);

// Prints the figure banner: what the paper shows and what to compare.
void PrintFigureHeader(const std::string& figure, const std::string& description,
                       const std::string& paper_expectation);

// Runs each system across `loads_krps` and prints one aligned table:
// columns are load plus the p99.9 slowdown of every system.
void RunSlowdownSweep(const std::vector<SystemConfig>& systems, const CostModel& costs,
                      const ServiceDistribution& distribution,
                      const std::vector<double>& loads_krps, const ExperimentParams& params);

// Finds each system's maximum load under the 50x p99.9-slowdown SLO and
// prints it, plus every system's improvement over `baseline_index`.
void PrintSloCrossovers(const std::vector<SystemConfig>& systems, const CostModel& costs,
                        const ServiceDistribution& distribution, double lo_krps, double hi_krps,
                        const ExperimentParams& params, std::size_t baseline_index = 0);

// Runs the real runtime under a fixed-length spin workload (`request_count`
// requests of `service_us` each, submitted up front) and returns its
// telemetry snapshot. The mechanism figures use this to print live counters
// next to the model's predictions (Eq. 3: floor(S/q) preemptions/request).
telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count);

// Observability-aware variant: when --trace-out= / --metrics-out= (or
// CONCORD_TRACE_OUT / CONCORD_METRICS_OUT) are present, the run additionally
// captures a scheduling trace and samples windowed metrics, exporting both
// (docs/tracing.md). Called repeatedly, later runs overwrite the artifacts:
// the files describe the last live section. Honors the shared runtime
// selection (--policy= / --shards= / --placement=); with shards > 1 each
// shard's trace is exported to its own telemetry::ShardedOutPath file.
telemetry::TelemetrySnapshot RunLiveSpinTelemetry(double quantum_us, double service_us,
                                                  int request_count, int worker_count, int argc,
                                                  char** argv);

// Live head-to-head policy comparison: runs the same open-loop bimodal spin
// mix (every `long_every`-th request runs `long_us`, the rest `short_us`;
// long_every == 0 means all-short) through all six executable policies
// (fcfs, single-queue, concord-jbsq, edf, approx-srpt, concord-adaptive) on
// the real runtime and prints one table of p50/p99/p99.9 slowdown per
// policy — the live analogue of the fig06/07/08 model curves, host-scaled
// (2 workers per shard). Every request carries a per-class deadline of 10x
// its clean service time, so the deadline-aware policies have something to
// order by (the others ignore it). Honors --shards= / --placement=;
// --policy= is ignored here since the comparison spans every policy.
void RunLivePolicyComparison(double quantum_us, double short_us, double long_us, int long_every,
                             int request_count, double gap_us, int argc, char** argv);

// Prints the live mechanism counters of `snapshot` against the model's
// preemptions-per-request prediction for (quantum_us, service_us).
void PrintLiveCounterCheck(const telemetry::TelemetrySnapshot& snapshot, double quantum_us,
                           double service_us);

// Prints the per-class latency anatomy of `snapshot` as one table (mean
// microseconds per stage; anatomy.h): the live "where did the latency go"
// companion to the mechanism-counter check — queueing vs service vs
// preemption-induced requeue wait, per class, exact by construction.
void PrintLiveAnatomy(const telemetry::TelemetrySnapshot& snapshot);

// Writes `snapshot` to the --telemetry-out=FILE (or CONCORD_TELEMETRY_OUT)
// destination; no-op when neither is set.
void MaybeWriteTelemetry(const telemetry::TelemetrySnapshot& snapshot, int argc, char** argv);

}  // namespace concord

#endif  // CONCORD_BENCH_FIGURE_COMMON_H_
