// Shared plumbing for the figure-regeneration benches: environment-tunable
// request counts, slowdown-vs-load sweeps and SLO-crossover summaries.

#ifndef CONCORD_BENCH_FIGURE_COMMON_H_
#define CONCORD_BENCH_FIGURE_COMMON_H_

#include <string>
#include <vector>

#include "src/model/costs.h"
#include "src/model/experiment.h"
#include "src/workload/distribution.h"

namespace concord {

// Requests per load point; override with CONCORD_BENCH_REQUESTS=<n>.
std::size_t BenchRequestCount(std::size_t default_count = 100000);

// Prints the figure banner: what the paper shows and what to compare.
void PrintFigureHeader(const std::string& figure, const std::string& description,
                       const std::string& paper_expectation);

// Runs each system across `loads_krps` and prints one aligned table:
// columns are load plus the p99.9 slowdown of every system.
void RunSlowdownSweep(const std::vector<SystemConfig>& systems, const CostModel& costs,
                      const ServiceDistribution& distribution,
                      const std::vector<double>& loads_krps, const ExperimentParams& params);

// Finds each system's maximum load under the 50x p99.9-slowdown SLO and
// prints it, plus every system's improvement over `baseline_index`.
void PrintSloCrossovers(const std::vector<SystemConfig>& systems, const CostModel& costs,
                        const ServiceDistribution& distribution, double lo_krps, double hi_krps,
                        const ExperimentParams& params, std::size_t baseline_index = 0);

}  // namespace concord

#endif  // CONCORD_BENCH_FIGURE_COMMON_H_
