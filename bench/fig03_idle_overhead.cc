// Figure 3: time a worker spends idle awaiting its next request, vs service
// time, for single-queue systems (Shinjuku, Persephone) and Concord's
// JBSQ(2).
//
// Reproduced with the server model under a pre-loaded (closed) queue: the
// offered load far exceeds capacity and ingress costs are zeroed, so the
// only idleness left is the dispatcher<->worker communication the figure
// isolates. 8 workers, no preemption, per the paper's setup.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/server_model.h"
#include "src/model/systems.h"
#include "src/stats/table.h"

namespace concord {
namespace {

double MedianWaitFraction(SystemConfig config, CostModel costs, double service_us,
                          std::size_t requests) {
  FixedDistribution dist(UsToNs(service_us));
  ServerModel model(std::move(config), costs, /*seed=*/17);
  // Saturating load: ~4x the 8-worker capacity.
  const double krps = 4.0 * 8.0 / service_us * 1000.0;
  return model.Run(dist, krps, requests).median_worker_wait_fraction;
}

void Run() {
  PrintFigureHeader("Figure 3",
                    "Median worker idle fraction awaiting the next request, 8 workers, "
                    "saturated pre-loaded queue",
                    "single-queue overhead grows as service time shrinks (tens of % at small "
                    "S); JBSQ(2) stays several-fold lower (paper: 9-13x at S >= 5us)");

  CostModel costs = DefaultCosts();
  costs.networker_ns = 0.0;
  costs.dispatch_arrival_ns = 0.0;
  // Persephone's colocated networker/dispatcher does slightly less work per
  // handoff than Shinjuku's split pair in the paper's measurement.
  CostModel persephone_costs = costs;
  persephone_costs.dispatch_sq_handoff_ns -= 20.0;

  const std::size_t requests = BenchRequestCount(40000);
  TablePrinter table({"service_us", "shinjuku_SQ", "persephone_SQ", "concord_JBSQ2",
                      "SQ/JBSQ_ratio"});
  for (double service_us : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    // No preemption: quantum far above every service time.
    const double sq = MedianWaitFraction(MakeShinjuku(8, UsToNs(10000.0)), costs, service_us,
                                         requests);
    const double persephone =
        MedianWaitFraction(MakePersephoneFcfs(8), persephone_costs, service_us, requests);
    const double jbsq = MedianWaitFraction(MakeConcordNoDispatcherWork(8, UsToNs(10000.0)),
                                           costs, service_us, requests);
    table.AddRow({TablePrinter::Fixed(service_us, 0), TablePrinter::Percent(sq, 1),
                  TablePrinter::Percent(persephone, 1), TablePrinter::Percent(jbsq, 1),
                  TablePrinter::Fixed(jbsq > 0.0 ? sq / jbsq : 0.0, 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
