// Figure 5: impact of non-instantaneous preemption on p99.9 slowdown.
//
// An idealized queueing simulation (all mechanism costs zero) of the
// Bimodal(99.5:0.5, 0.5:500) workload with a 5us quantum, where the yield
// happens a one-sided-normal delay after the quantum: N(5,0) is precise
// preemption, N(5,1) and N(5,2) are Concord-like imprecision, and a
// no-preemption FCFS single queue is the lower bound.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

SystemConfig PreciseVariant(double sigma_us) {
  SystemConfig config = MakeShinjuku(14, UsToNs(5.0));
  config.name = sigma_us == 0.0 ? "precise N(5,0)"
                                : "imprecise N(5," + std::to_string(static_cast<int>(sigma_us)) +
                                      ")";
  config.preempt = PreemptMechanism::kCoopCacheLine;  // delay draws use sigma
  config.preempt_delay_sigma_ns = UsToNs(sigma_us);
  return config;
}

void Run() {
  PrintFigureHeader("Figure 5",
                    "p99.9 slowdown vs load under idealized costs: precise vs imprecise "
                    "preemption, Bimodal(99.5:0.5, 0.5:500), q=5us, 14 workers",
                    "N(5,1) and N(5,2) track precise preemption closely; no preemption "
                    "diverges at far lower load");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
  const CostModel costs = IdealizedCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(100000);

  SystemConfig no_preempt = MakePersephoneFcfs(14);
  no_preempt.name = "no preemption (SQ)";

  // Max idealized load = 14 workers / 2.9975us = 4671 kRps; plot load as a
  // fraction of it like the paper.
  const double max_krps = 14.0 / NsToUs(spec.distribution->MeanNs()) * 1000.0;
  std::vector<double> loads;
  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    loads.push_back(fraction * max_krps);
  }
  RunSlowdownSweep({no_preempt, PreciseVariant(0.0), PreciseVariant(1.0), PreciseVariant(2.0)},
                   costs, *spec.distribution, loads, params);
  std::cout << "(loads are 10%..95% of the idealized max " << max_krps << " kRps)\n";
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
