// Figure 13: does the work-conserving dispatcher help on a small VM?
// 4-core configuration (dispatcher + networker + 2 workers), LevelDB
// GET/SCAN, q=5us: Concord with vs without dispatcher work stealing.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 13",
                    "p99.9 slowdown vs load on a 4-core VM (2 workers), LevelDB GET/SCAN, "
                    "q=5us: dedicated vs work-conserving dispatcher",
                    "running application logic on the dispatcher raises the sustainable "
                    "load by ~33%");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  SystemConfig without = MakeConcordNoDispatcherWork(2, UsToNs(5.0));
  without.name = "Concord w/o dispatcher work";
  SystemConfig with = MakeConcord(2, UsToNs(5.0));

  const std::vector<SystemConfig> systems = {without, with};
  RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(1.0, 11.0, 11), params);
  PrintSloCrossovers(systems, costs, *spec.distribution, 0.5, 12.0, params,
                     /*baseline_index=*/0);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
