// Runtime microbenchmarks (google-benchmark): end-to-end costs of the real
// runtime's moving parts on the host. On a machine with >= workers+2 cores
// these approximate the paper's component numbers; on smaller hosts they
// measure functional overhead only.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <chrono>
#include <sstream>

#include "src/loadgen/loadgen.h"
#include "src/runtime/instrument.h"
#include "src/runtime/policy.h"
#include "src/runtime/runtime.h"
#include "src/runtime/sharded_runtime.h"
#include "src/stats/slowdown.h"
#include "src/workload/distribution.h"
#include "src/telemetry/event_ring.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/metrics_sampler.h"

namespace concord {
namespace {

// CONCORD_BENCH_TRACE=1: run the throughput bench with the full
// observability stack live (scheduling-trace capture plus a 10 ms metrics
// sampler). The CI telemetry-overhead gate measures this configuration
// against a CONCORD_TELEMETRY=OFF build.
bool BenchTraceEnabled() {
  const char* env = std::getenv("CONCORD_BENCH_TRACE");
  return env != nullptr && env[0] == '1';
}

// CONCORD_BENCH_FLIGHT=1: additionally arm the anomaly-triggered flight
// recorder during the throughput bench with every trigger disabled, so CI
// can bound the armed-idle cost (background polling + lifecycle buffering,
// no dumps) against the flight-recorder-off run.
bool BenchFlightEnabled() {
  const char* env = std::getenv("CONCORD_BENCH_FLIGHT");
  return env != nullptr && env[0] == '1';
}

void BM_SubmitCompleteRoundTrip(benchmark::State& state) {
  // Single in-flight request at a time: measures the full submit -> dispatch
  // -> fiber run -> completion path.
  std::atomic<std::uint64_t> completed{0};
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  callbacks.on_complete = [&completed](const RequestView&, std::uint64_t) {
    completed.fetch_add(1, std::memory_order_release);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    const std::uint64_t target = completed.load(std::memory_order_acquire) + 1;
    while (!runtime.Submit(id++, 0, nullptr)) {
      std::this_thread::yield();
    }
    while (completed.load(std::memory_order_acquire) < target) {
      CpuRelax();
    }
  }
  runtime.Shutdown();
}
BENCHMARK(BM_SubmitCompleteRoundTrip);

// Bench driver on the load-generating thread, not handler code; the only
// loops are the submit spin and WaitIdle. concord-lint: allow-no-probe
void BM_PipelinedThroughput(benchmark::State& state) {
  // Keeps a window of requests in flight: the runtime's sustainable
  // request rate for no-op handlers.
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 1000.0;
  const bool traced = BenchTraceEnabled();
  if (traced) {
    options.trace_buffer_capacity = std::size_t{1} << 16;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (traced) {
    sampler = std::make_unique<trace::MetricsSampler>(
        trace::MetricsSampler::Options{}, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  std::unique_ptr<trace::FlightRecorder> flight;
  if (BenchFlightEnabled()) {
    trace::FlightRecorderOptions flight_options;  // all triggers default-off
    flight_options.dump_path = "/tmp/concord_bench_flight.trace.json";
    flight_options.worker_count = options.worker_count;
    flight_options.quantum_us = options.quantum_us;
    flight = std::make_unique<trace::FlightRecorder>(
        flight_options, [&runtime] { return runtime.GetTelemetry(); });
    flight->Start();
  }
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    while (!runtime.Submit(id, 0, nullptr)) {
      std::this_thread::yield();
    }
    ++id;
    if (id % 64 == 0) {
      runtime.WaitIdle();
    }
  }
  runtime.WaitIdle();
  if (flight != nullptr) {
    flight->Stop();
  }
  if (sampler != nullptr) {
    sampler->Stop();
  }
  runtime.Shutdown();
  state.SetItemsProcessed(static_cast<std::int64_t>(id));
}
BENCHMARK(BM_PipelinedThroughput);

void BM_SpinWithProbes1us(benchmark::State& state) {
  for (auto _ : state) {
    SpinWithProbesUs(1.0);
  }
}
BENCHMARK(BM_SpinWithProbes1us);

void BM_GuardedMutexLockUnlock(benchmark::State& state) {
  GuardedMutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(PreemptionDisabled());
    mu.unlock();
  }
}
BENCHMARK(BM_GuardedMutexLockUnlock);

void BM_TelemetryEventRingPush(benchmark::State& state) {
  // The per-completion cost a worker pays to publish a lifecycle record.
  telemetry::EventRing<telemetry::RequestLifecycle> ring(256);
  telemetry::RequestLifecycle lifecycle;
  lifecycle.id = 1;
  for (auto _ : state) {
    ring.Push(lifecycle);
    benchmark::DoNotOptimize(ring.produced());
  }
}
BENCHMARK(BM_TelemetryEventRingPush);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Cost of GetTelemetry() against a live runtime (cold path; called by
  // monitoring, not by the request path).
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Monitoring-path measurement, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.GetTelemetry());
  }
  runtime.Shutdown();
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace
}  // namespace concord

namespace concord {

// --json-out=FILE / CONCORD_BENCH_JSON_OUT: machine-readable perf summary
// for the CI perf-smoke artifact. Runs two dedicated workloads after the
// google-benchmark pass (their console numbers are not machine-parsed):
//
//   pipelined_throughput — the BM_PipelinedThroughput shape (2 workers,
//     no-op handler, 64-deep submit window) run `repetitions` times; the
//     JSON reports the median so one noisy rep on a shared host does not
//     gate CI.
//   slowdown — the RunExportWorkload spin mix (90% 5us / 10% 100us,
//     q=20us, jbsq=2) with per-request slowdown recorded from
//     on_complete; reports p50/p99/p99.9.
// One pipelined-throughput measurement pass: `repetitions` timed reps of
// `request_count` no-op requests through a 64-deep submit window, on
// `shard_count` shards under `policy`, preceded by `warmup_reps` whole
// discarded reps (cold-start effects — first-fault of the request slabs,
// fiber-stack allocation, branch warmup — land there instead of skewing the
// committed median). `cpus` seats the shards via a topology PlacementPlan
// when non-empty; `pinned_out` (optional) reports whether the plan pinned.
// Returns the median items/s over the timed reps.
double MeasurePipelinedThroughput(std::size_t request_count, int repetitions, int warmup_reps,
                                  PolicyKind policy, int shard_count, ShardPlacement placement,
                                  // concord-lint: allow-no-probe (bench driver, main thread)
                                  const std::vector<int>& cpus, bool* pinned_out = nullptr) {
  std::vector<double> items_per_sec;
  items_per_sec.reserve(static_cast<std::size_t>(repetitions));
  // concord-lint: allow-no-probe (bench driver loop on the main thread, not handler code)
  for (int rep = 0; rep < warmup_reps + repetitions; ++rep) {
    ShardedRuntime::Options options;
    options.shard.worker_count = 2;
    options.shard.quantum_us = 1000.0;
    options.shard.policy = policy;
    options.shard_count = shard_count;
    options.placement = placement;
    options.allowed_cpus = cpus;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const RequestView&) {};
    ShardedRuntime runtime(options, callbacks);
    if (pinned_out != nullptr) {
      *pinned_out = runtime.placement_plan().pinned;
    }
    runtime.Start();
    // Untimed intra-rep warmup: populate the fiber pools, ring pages and
    // producer slots before the clock starts (google-benchmark's calibration
    // runs do the same for BM_PipelinedThroughput, keeping the numbers
    // comparable).
    const std::size_t warmup = std::min<std::size_t>(request_count / 10, 10000);
    // Driver loop on the main thread, not handler code. concord-lint: allow-no-probe
    for (std::size_t id = 0; id < warmup; ++id) {
      while (!runtime.Submit(static_cast<std::uint64_t>(id), 0, nullptr)) {
        std::this_thread::yield();
      }
      if ((id + 1) % 64 == 0) {
        runtime.WaitIdle();
      }
    }
    runtime.WaitIdle();
    const auto start = std::chrono::steady_clock::now();
    // Driver loop on the main thread, not handler code. concord-lint: allow-no-probe
    for (std::size_t id = 0; id < request_count; ++id) {
      while (!runtime.Submit(static_cast<std::uint64_t>(id), 0, nullptr)) {
        std::this_thread::yield();
      }
      if ((id + 1) % 64 == 0) {
        runtime.WaitIdle();
      }
    }
    runtime.WaitIdle();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    runtime.Shutdown();
    if (rep < warmup_reps) {
      continue;  // whole-rep warmup: measured, discarded
    }
    items_per_sec.push_back(elapsed_s > 0.0 ? static_cast<double>(request_count) / elapsed_s
                                            : 0.0);
  }
  std::sort(items_per_sec.begin(), items_per_sec.end());
  return items_per_sec[items_per_sec.size() / 2];
}

// concord-lint: allow-no-probe (bench harness; drives the runtime from the main thread)
int RunJsonBench(const std::string& json_out, int argc, char** argv) {
  // Sized so fixed per-rep costs (Start/WaitIdle edges) stay under ~1% of
  // the timed window; below ~100k they visibly inflate ns_per_op.
  const auto request_count = static_cast<std::size_t>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--requests=", "CONCORD_BENCH_REQUESTS",
                                     400000)));
  const RuntimeSelection selection = SelectionFromArgsOrEnv(argc, argv);
  constexpr int kRepetitions = 5;
  // Whole discarded reps before the timed ones (--warmup-reps= /
  // CONCORD_WARMUP_REPS, default 1): slab first-fault, fiber-pool and
  // branch-predictor warmup land outside the committed median.
  const int warmup_reps = static_cast<int>(std::max<long long>(
      0, telemetry::IntFromFlagOrEnv(argc, argv, "--warmup-reps=", "CONCORD_WARMUP_REPS", 1)));

  bool pinned = false;
  const double median_items_per_sec = MeasurePipelinedThroughput(
      request_count, kRepetitions, warmup_reps, selection.policy, selection.shard_count,
      selection.placement, selection.cpus, &pinned);
  const double median_ns_per_op =
      median_items_per_sec > 0.0 ? 1.0e9 / median_items_per_sec : 0.0;
  // The inter-shard scaling data point for the committed artifact: when the
  // selected run is the default single shard, also measure 2 shards so one
  // run yields the comparison (on hosts with enough cores, 2 shards should
  // clear 1.3x; on small hosts the numbers record the oversubscription
  // honestly).
  double two_shard_items_per_sec = 0.0;
  bool two_shard_pinned = false;
  if (selection.shard_count == 1) {
    two_shard_items_per_sec = MeasurePipelinedThroughput(
        request_count, kRepetitions, warmup_reps, selection.policy, 2, selection.placement,
        selection.cpus, &two_shard_pinned);
  }

  SlowdownTracker tracker;
  std::uint64_t slowdown_completed = 0;
  {
    ShardedRuntime::Options options;
    options.shard.worker_count = 2;
    options.shard.quantum_us = 20.0;
    options.shard.jbsq_depth = 2;
    options.shard.policy = selection.policy;
    options.shard_count = selection.shard_count;
    options.placement = selection.placement;
    options.allowed_cpus = selection.cpus;
    std::mutex complete_mu;  // with shards > 1 every shard's dispatcher completes here
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const RequestView& view) {
      SpinWithProbesUs(view.request_class == 1 ? 100.0 : 5.0);
    };
    // Written once after Start() and before the first Submit; the ring's
    // release/acquire hand-off orders it before any on_complete read.
    double tsc_ghz = 1.0;
    callbacks.on_complete = [&tracker, &slowdown_completed, &tsc_ghz, &complete_mu](
                                const RequestView& view, std::uint64_t latency_tsc) {
      const double latency_ns = static_cast<double>(latency_tsc) / tsc_ghz;
      const double service_ns = view.request_class == 1 ? 100000.0 : 5000.0;
      std::lock_guard<std::mutex> lock(complete_mu);
      ++slowdown_completed;
      tracker.Record(latency_ns, service_ns, view.request_class);
    };
    ShardedRuntime slowdown_runtime(options, callbacks);
    slowdown_runtime.Start();
    tsc_ghz = slowdown_runtime.tsc_ghz();
    const std::size_t slowdown_requests = std::min<std::size_t>(request_count, 12000);
    // Open-loop pacing at a 40us inter-arrival gap (~25 krps against a
    // 14.5us mean service demand): without pacing the unbounded central
    // queue grows for the whole run and the percentiles measure run length
    // instead of scheduling.
    constexpr double kGapNs = 40000.0;
    const auto pace_start = std::chrono::steady_clock::now();
    // Driver loop on the main thread, not handler code. concord-lint: allow-no-probe
    for (std::size_t i = 0; i < slowdown_requests; ++i) {
      const double due_ns = static_cast<double>(i) * kGapNs;
      // concord-lint: allow-no-probe (open-loop pacing loop on the main thread, not handler code)
      for (;;) {
        const double elapsed_ns =
            std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - pace_start)
                .count();
        if (elapsed_ns >= due_ns) {
          break;
        }
        std::this_thread::yield();
      }
      const int request_class = i % 10 == 9 ? 1 : 0;
      while (!slowdown_runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr)) {
        std::this_thread::yield();
      }
    }
    slowdown_runtime.WaitIdle();
    slowdown_runtime.Shutdown();
  }

  // --duration-s= / CONCORD_BENCH_DURATION_S (> 0): additionally run an
  // open-loop, time-bounded workload at --offered-krps= (default 25) through
  // the shared OpenLoopLoadgen::RunFor harness — the same time-bounded mode
  // net_loadgen uses against a live server — and report achieved vs offered
  // rate. 0 (the default) keeps the bench count-bounded only.
  const auto duration_s = static_cast<double>(std::max<long long>(
      0, telemetry::IntFromFlagOrEnv(argc, argv, "--duration-s=", "CONCORD_BENCH_DURATION_S", 0)));
  const auto offered_krps = static_cast<double>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--offered-krps=",
                                     "CONCORD_BENCH_OFFERED_KRPS", 25)));
  LoadgenReport open_loop;
  if (duration_s > 0.0) {
    // Same mix as the count-bounded slowdown workload above: 90% 5us / 10%
    // 100us, so the two blocks are directly comparable.
    const std::unique_ptr<DiscreteMixtureDistribution> mix = MakeBimodal(90.0, 5.0, 10.0, 100.0);
    OpenLoopLoadgen loadgen(*mix, {5.0, 100.0}, /*seed=*/42);
    ShardedRuntime::Options options;
    options.shard.worker_count = 2;
    options.shard.quantum_us = 20.0;
    options.shard.jbsq_depth = 2;
    options.shard.policy = selection.policy;
    options.shard_count = selection.shard_count;
    options.placement = selection.placement;
    options.allowed_cpus = selection.cpus;
    Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const RequestView& view) {
      SpinWithProbesUs(view.request_class == 1 ? 100.0 : 5.0);
    };
    callbacks.on_complete = loadgen.LockedCompletionHook();
    ShardedRuntime runtime(options, callbacks);
    runtime.Start();
    open_loop = loadgen.RunFor(&runtime, offered_krps, duration_s);
    runtime.Shutdown();
  }

  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n";
  json << "  \"benchmark\": \"micro_runtime\",\n";
  json << "  \"policy\": \"" << PolicyKindName(selection.policy) << "\",\n";
  json << "  \"shards\": " << selection.shard_count << ",\n";
  json << "  \"placement\": \"" << ShardPlacementName(selection.placement) << "\",\n";
  json << "  \"pinned\": " << (pinned ? "true" : "false") << ",\n";
  // Host shape at record time: scaling_model reads this so calibration stays
  // tied to the machine that produced the numbers, not whoever reruns it.
  json << "  \"host_cpus\": " << Topology::Discover().CpuCount() << ",\n";
  json << "  \"pipelined_throughput\": {\n";
  json << "    \"requests_per_rep\": " << request_count << ",\n";
  json << "    \"repetitions\": " << kRepetitions << ",\n";
  json << "    \"warmup_reps\": " << warmup_reps << ",\n";
  json << "    \"median_items_per_sec\": " << median_items_per_sec << ",\n";
  json << "    \"median_ns_per_op\": " << median_ns_per_op << "\n";
  json << "  },\n";
  if (two_shard_items_per_sec > 0.0) {
    json << "  \"pipelined_throughput_2shard\": {\n";
    json << "    \"pinned\": " << (two_shard_pinned ? "true" : "false") << ",\n";
    json << "    \"median_items_per_sec\": " << two_shard_items_per_sec << ",\n";
    json << "    \"median_ns_per_op\": " << 1.0e9 / two_shard_items_per_sec << ",\n";
    json << "    \"vs_single_shard\": "
         << (median_items_per_sec > 0.0 ? two_shard_items_per_sec / median_items_per_sec : 0.0)
         << "\n";
    json << "  },\n";
  }
  json << "  \"slowdown\": {\n";
  json << "    \"completed\": " << slowdown_completed << ",\n";
  json << "    \"p50\": " << tracker.QuantileSlowdown(0.50) << ",\n";
  json << "    \"p99\": " << tracker.QuantileSlowdown(0.99) << ",\n";
  json << "    \"p999\": " << tracker.P999Slowdown() << "\n";
  json << "  }";
  if (duration_s > 0.0) {
    json << ",\n  \"open_loop\": {\n";
    json << "    \"duration_s\": " << duration_s << ",\n";
    json << "    \"offered_krps\": " << open_loop.offered_krps << ",\n";
    json << "    \"achieved_krps\": " << open_loop.achieved_krps << ",\n";
    json << "    \"achieved_vs_offered\": "
         << (open_loop.offered_krps > 0.0 ? open_loop.achieved_krps / open_loop.offered_krps
                                          : 0.0)
         << ",\n";
    json << "    \"issued\": " << open_loop.issued << ",\n";
    json << "    \"dropped\": " << open_loop.dropped << ",\n";
    json << "    \"completed\": " << open_loop.completed << ",\n";
    json << "    \"p50\": " << open_loop.p50_slowdown << ",\n";
    json << "    \"p99\": " << open_loop.p99_slowdown << ",\n";
    json << "    \"p999\": " << open_loop.p999_slowdown << "\n";
    json << "  }";
  }
  // Optional reference block so a committed artifact can carry the pre-change
  // numbers it is being compared against (set by whoever records the run).
  const char* baseline_items = std::getenv("CONCORD_BENCH_BASELINE_ITEMS_PER_SEC");
  if (baseline_items != nullptr) {
    json << ",\n  \"baseline\": {\n";
    json << "    \"median_items_per_sec\": " << std::atof(baseline_items);
    if (const char* baseline_ns = std::getenv("CONCORD_BENCH_BASELINE_NS_PER_OP")) {
      json << ",\n    \"median_ns_per_op\": " << std::atof(baseline_ns);
    }
    if (const char* baseline_commit = std::getenv("CONCORD_BENCH_BASELINE_COMMIT")) {
      json << ",\n    \"commit\": \"" << baseline_commit << "\"";
    }
    json << "\n  }";
  }
  json << "\n}\n";
  return telemetry::WriteTextFile(json.str(), json_out, "bench json") ? 0 : 1;
}

// --deadline-us=A[,B,...] / CONCORD_DEADLINE_US: per-class relative deadlines
// in microseconds for the export workload (entry c applies to class c; <= 0
// or missing means no deadline). With --policy=edf this makes the exported
// trace exercise the analyzer's EDF dispatch-ordering check.
std::vector<double> DeadlinesFromArgsOrEnv(int argc, char** argv) {
  const std::string spec =
      telemetry::OutPathFromFlagOrEnv(argc, argv, "--deadline-us=", "CONCORD_DEADLINE_US");
  std::vector<double> deadline_us;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    deadline_us.push_back(std::atof(item.c_str()));
  }
  return deadline_us;
}

// Post-benchmark export workload behind --telemetry-out= / --trace-out= /
// --metrics-out=: a mixed short/long spin mix (90% 5us, 10% 100us at
// q=20us) that exercises preemption signals, co-op yields, JBSQ
// re-dispatch and dispatcher adoption, sized to span several 10 ms metrics
// windows. CI feeds the resulting trace and series to concord_trace --check.
// concord-lint: allow-no-probe (bench harness; drives the runtime from the main thread)
int RunExportWorkload(int argc, char** argv) {
  const std::string telemetry_out = telemetry::TelemetryOutPath(argc, argv);
  const std::string trace_out = telemetry::TraceOutPath(argc, argv);
  const std::string metrics_out = telemetry::MetricsOutPath(argc, argv);

  // ~90ms of work on two workers at the default count.
  const auto request_count = static_cast<std::size_t>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--requests=", "CONCORD_BENCH_REQUESTS", 12000)));
  const RuntimeSelection selection = SelectionFromArgsOrEnv(argc, argv);

  ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 20.0;
  options.shard.jbsq_depth = 2;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  options.allowed_cpus = selection.cpus;
  if (!trace_out.empty()) {
    // Sized for zero drops at the default request count; any overflow is
    // exactly counted and surfaced by the analyzer.
    options.shard.trace_buffer_capacity = std::size_t{1} << 17;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 100.0 : 5.0);
  };
  ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (!metrics_out.empty()) {
    trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = telemetry::MetricsWindowMs(argc, argv);
    if (metrics_out != "-") {
      sampler_options.exposition_path = metrics_out + ".prom";
    }
    sampler = std::make_unique<trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  const std::vector<double> deadline_us = DeadlinesFromArgsOrEnv(argc, argv);
  // Driver loop on the main thread, not handler code. concord-lint: allow-no-probe
  for (std::size_t i = 0; i < request_count; ++i) {
    const int request_class = i % 10 == 9 ? 1 : 0;
    const double deadline = static_cast<std::size_t>(request_class) < deadline_us.size()
                                ? deadline_us[static_cast<std::size_t>(request_class)]
                                : 0.0;
    const auto id = static_cast<std::uint64_t>(i);
    while (!(deadline > 0.0 ? runtime.Submit(id, request_class, nullptr, deadline)
                            : runtime.Submit(id, request_class, nullptr))) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  bool ok = true;
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    ok = sampler->WriteSeries(metrics_out) && ok;
  }
  runtime.Shutdown();
  if (!trace_out.empty()) {
    // Post-Shutdown: every dispatcher's final ring drain has run. One file
    // per shard ("out.json" -> "out.shard1.json"...), each independently
    // checkable by concord_trace; single-shard keeps the plain path.
    for (int s = 0; s < runtime.shard_count(); ++s) {
      ok = trace::WriteChromeTrace(runtime.GetShardTrace(s),
                                   telemetry::ShardedOutPath(trace_out, s,
                                                             runtime.shard_count())) &&
           ok;
    }
  }
  if (!telemetry_out.empty()) {
    ok = telemetry::WriteSnapshotJson(snapshot, telemetry_out) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace concord

// BENCHMARK_MAIN, plus the shared observability flags: after the benchmarks
// run, any of --telemetry-out= / --trace-out= / --metrics-out= (or their
// CONCORD_*_OUT envs) drives one instrumented workload and exports the
// requested artifacts. The CI overhead smoke compares BM_PipelinedThroughput
// between CONCORD_TELEMETRY ON and OFF builds (and, with
// CONCORD_BENCH_TRACE=1, with tracing + sampling live).
// concord-lint: allow-no-probe (bench entry point: flag filtering + harness calls)
int main(int argc, char** argv) {
  const bool want_export = !concord::telemetry::TelemetryOutPath(argc, argv).empty() ||
                           !concord::telemetry::TraceOutPath(argc, argv).empty() ||
                           !concord::telemetry::MetricsOutPath(argc, argv).empty();
  const std::string json_out =
      concord::telemetry::OutPathFromFlagOrEnv(argc, argv, "--json-out=", "CONCORD_BENCH_JSON_OUT");
  std::vector<char*> bench_args;  // benchmark::Initialize rejects foreign flags
  // concord-lint: allow-no-probe (flag filtering in main, not handler code)
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0 ||
        std::strncmp(argv[i], "--trace-out=", 12) == 0 ||
        std::strncmp(argv[i], "--metrics-out=", 14) == 0 ||
        std::strncmp(argv[i], "--metrics-window-ms=", 20) == 0 ||
        std::strncmp(argv[i], "--json-out=", 11) == 0 ||
        std::strncmp(argv[i], "--policy=", 9) == 0 ||
        std::strncmp(argv[i], "--shards=", 9) == 0 ||
        std::strncmp(argv[i], "--placement=", 12) == 0 ||
        std::strncmp(argv[i], "--deadline-us=", 14) == 0 ||
        std::strncmp(argv[i], "--requests=", 11) == 0 ||
        std::strncmp(argv[i], "--cpus=", 7) == 0 ||
        std::strncmp(argv[i], "--warmup-reps=", 14) == 0 ||
        std::strncmp(argv[i], "--duration-s=", 13) == 0 ||
        std::strncmp(argv[i], "--offered-krps=", 15) == 0) {
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int status = 0;
  if (want_export) {
    status = concord::RunExportWorkload(argc, argv);
  }
  if (!json_out.empty()) {
    const int json_status = concord::RunJsonBench(json_out, argc, argv);
    status = status != 0 ? status : json_status;
  }
  return status;
}
