// Runtime microbenchmarks (google-benchmark): end-to-end costs of the real
// runtime's moving parts on the host. On a machine with >= workers+2 cores
// these approximate the paper's component numbers; on smaller hosts they
// measure functional overhead only.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/event_ring.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics_sampler.h"

namespace concord {
namespace {

// CONCORD_BENCH_TRACE=1: run the throughput bench with the full
// observability stack live (scheduling-trace capture plus a 10 ms metrics
// sampler). The CI telemetry-overhead gate measures this configuration
// against a CONCORD_TELEMETRY=OFF build.
bool BenchTraceEnabled() {
  const char* env = std::getenv("CONCORD_BENCH_TRACE");
  return env != nullptr && env[0] == '1';
}

void BM_SubmitCompleteRoundTrip(benchmark::State& state) {
  // Single in-flight request at a time: measures the full submit -> dispatch
  // -> fiber run -> completion path.
  std::atomic<std::uint64_t> completed{0};
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  callbacks.on_complete = [&completed](const RequestView&, std::uint64_t) {
    completed.fetch_add(1, std::memory_order_release);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    const std::uint64_t target = completed.load(std::memory_order_acquire) + 1;
    while (!runtime.Submit(id++, 0, nullptr)) {
      std::this_thread::yield();
    }
    while (completed.load(std::memory_order_acquire) < target) {
      CpuRelax();
    }
  }
  runtime.Shutdown();
}
BENCHMARK(BM_SubmitCompleteRoundTrip);

void BM_PipelinedThroughput(benchmark::State& state) {
  // Keeps a window of requests in flight: the runtime's sustainable
  // request rate for no-op handlers.
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 1000.0;
  const bool traced = BenchTraceEnabled();
  if (traced) {
    options.trace_buffer_capacity = std::size_t{1} << 16;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (traced) {
    sampler = std::make_unique<trace::MetricsSampler>(
        trace::MetricsSampler::Options{}, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    while (!runtime.Submit(id, 0, nullptr)) {
      std::this_thread::yield();
    }
    ++id;
    if (id % 64 == 0) {
      runtime.WaitIdle();
    }
  }
  runtime.WaitIdle();
  if (sampler != nullptr) {
    sampler->Stop();
  }
  runtime.Shutdown();
  state.SetItemsProcessed(static_cast<std::int64_t>(id));
}
BENCHMARK(BM_PipelinedThroughput);

void BM_SpinWithProbes1us(benchmark::State& state) {
  for (auto _ : state) {
    SpinWithProbesUs(1.0);
  }
}
BENCHMARK(BM_SpinWithProbes1us);

void BM_GuardedMutexLockUnlock(benchmark::State& state) {
  GuardedMutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(PreemptionDisabled());
    mu.unlock();
  }
}
BENCHMARK(BM_GuardedMutexLockUnlock);

void BM_TelemetryEventRingPush(benchmark::State& state) {
  // The per-completion cost a worker pays to publish a lifecycle record.
  telemetry::EventRing<telemetry::RequestLifecycle> ring(256);
  telemetry::RequestLifecycle lifecycle;
  lifecycle.id = 1;
  for (auto _ : state) {
    ring.Push(lifecycle);
    benchmark::DoNotOptimize(ring.produced());
  }
}
BENCHMARK(BM_TelemetryEventRingPush);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Cost of GetTelemetry() against a live runtime (cold path; called by
  // monitoring, not by the request path).
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Monitoring-path measurement, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.GetTelemetry());
  }
  runtime.Shutdown();
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace
}  // namespace concord

namespace concord {

// Post-benchmark export workload behind --telemetry-out= / --trace-out= /
// --metrics-out=: a mixed short/long spin mix (90% 5us, 10% 100us at
// q=20us) that exercises preemption signals, co-op yields, JBSQ
// re-dispatch and dispatcher adoption, sized to span several 10 ms metrics
// windows. CI feeds the resulting trace and series to concord_trace --check.
int RunExportWorkload(int argc, char** argv) {
  const std::string telemetry_out = telemetry::TelemetryOutPath(argc, argv);
  const std::string trace_out = telemetry::TraceOutPath(argc, argv);
  const std::string metrics_out = telemetry::MetricsOutPath(argc, argv);

  std::size_t request_count = 12000;  // ~90ms of work on two workers
  if (const char* env = std::getenv("CONCORD_BENCH_REQUESTS")) {
    const long value = std::atol(env);
    if (value > 0) {
      request_count = static_cast<std::size_t>(value);
    }
  }

  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 20.0;
  options.jbsq_depth = 2;
  if (!trace_out.empty()) {
    // Sized for zero drops at the default request count; any overflow is
    // exactly counted and surfaced by the analyzer.
    options.trace_buffer_capacity = std::size_t{1} << 17;
  }
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView& view) {
    SpinWithProbesUs(view.request_class == 1 ? 100.0 : 5.0);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<trace::MetricsSampler> sampler;
  if (!metrics_out.empty()) {
    trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = telemetry::MetricsWindowMs(argc, argv);
    if (metrics_out != "-") {
      sampler_options.exposition_path = metrics_out + ".prom";
    }
    sampler = std::make_unique<trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  // Driver loop on the main thread, not handler code. concord-lint: allow-no-probe
  for (std::size_t i = 0; i < request_count; ++i) {
    const int request_class = i % 10 == 9 ? 1 : 0;
    while (!runtime.Submit(static_cast<std::uint64_t>(i), request_class, nullptr)) {
      std::this_thread::yield();
    }
  }
  runtime.WaitIdle();
  const telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
  bool ok = true;
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    ok = sampler->WriteSeries(metrics_out) && ok;
  }
  runtime.Shutdown();
  if (!trace_out.empty()) {
    // Post-Shutdown: the dispatcher's final ring drain has run.
    ok = trace::WriteChromeTrace(runtime.GetTrace(), trace_out) && ok;
  }
  if (!telemetry_out.empty()) {
    ok = telemetry::WriteSnapshotJson(snapshot, telemetry_out) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace concord

// BENCHMARK_MAIN, plus the shared observability flags: after the benchmarks
// run, any of --telemetry-out= / --trace-out= / --metrics-out= (or their
// CONCORD_*_OUT envs) drives one instrumented workload and exports the
// requested artifacts. The CI overhead smoke compares BM_PipelinedThroughput
// between CONCORD_TELEMETRY ON and OFF builds (and, with
// CONCORD_BENCH_TRACE=1, with tracing + sampling live).
int main(int argc, char** argv) {
  const bool want_export = !concord::telemetry::TelemetryOutPath(argc, argv).empty() ||
                           !concord::telemetry::TraceOutPath(argc, argv).empty() ||
                           !concord::telemetry::MetricsOutPath(argc, argv).empty();
  std::vector<char*> bench_args;  // benchmark::Initialize rejects foreign flags
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0 ||
        std::strncmp(argv[i], "--trace-out=", 12) == 0 ||
        std::strncmp(argv[i], "--metrics-out=", 14) == 0 ||
        std::strncmp(argv[i], "--metrics-window-ms=", 20) == 0) {
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (want_export) {
    return concord::RunExportWorkload(argc, argv);
  }
  return 0;
}
