// Runtime microbenchmarks (google-benchmark): end-to-end costs of the real
// runtime's moving parts on the host. On a machine with >= workers+2 cores
// these approximate the paper's component numbers; on smaller hosts they
// measure functional overhead only.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/instrument.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/event_ring.h"
#include "src/telemetry/export.h"

namespace concord {
namespace {

void BM_SubmitCompleteRoundTrip(benchmark::State& state) {
  // Single in-flight request at a time: measures the full submit -> dispatch
  // -> fiber run -> completion path.
  std::atomic<std::uint64_t> completed{0};
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  callbacks.on_complete = [&completed](const RequestView&, std::uint64_t) {
    completed.fetch_add(1, std::memory_order_release);
  };
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    const std::uint64_t target = completed.load(std::memory_order_acquire) + 1;
    while (!runtime.Submit(id++, 0, nullptr)) {
      std::this_thread::yield();
    }
    while (completed.load(std::memory_order_acquire) < target) {
      CpuRelax();
    }
  }
  runtime.Shutdown();
}
BENCHMARK(BM_SubmitCompleteRoundTrip);

void BM_PipelinedThroughput(benchmark::State& state) {
  // Keeps a window of requests in flight: the runtime's sustainable
  // request rate for no-op handlers.
  Runtime::Options options;
  options.worker_count = 2;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  std::uint64_t id = 0;
  // Driver loop on the bench thread, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    while (!runtime.Submit(id, 0, nullptr)) {
      std::this_thread::yield();
    }
    ++id;
    if (id % 64 == 0) {
      runtime.WaitIdle();
    }
  }
  runtime.WaitIdle();
  runtime.Shutdown();
  state.SetItemsProcessed(static_cast<std::int64_t>(id));
}
BENCHMARK(BM_PipelinedThroughput);

void BM_SpinWithProbes1us(benchmark::State& state) {
  for (auto _ : state) {
    SpinWithProbesUs(1.0);
  }
}
BENCHMARK(BM_SpinWithProbes1us);

void BM_GuardedMutexLockUnlock(benchmark::State& state) {
  GuardedMutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(PreemptionDisabled());
    mu.unlock();
  }
}
BENCHMARK(BM_GuardedMutexLockUnlock);

void BM_TelemetryEventRingPush(benchmark::State& state) {
  // The per-completion cost a worker pays to publish a lifecycle record.
  telemetry::EventRing<telemetry::RequestLifecycle> ring(256);
  telemetry::RequestLifecycle lifecycle;
  lifecycle.id = 1;
  for (auto _ : state) {
    ring.Push(lifecycle);
    benchmark::DoNotOptimize(ring.produced());
  }
}
BENCHMARK(BM_TelemetryEventRingPush);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Cost of GetTelemetry() against a live runtime (cold path; called by
  // monitoring, not by the request path).
  Runtime::Options options;
  options.worker_count = 1;
  options.quantum_us = 1000.0;
  Runtime::Callbacks callbacks;
  callbacks.handle_request = [](const RequestView&) {};
  Runtime runtime(options, callbacks);
  runtime.Start();
  // Monitoring-path measurement, not handler code. concord-lint: allow-no-probe
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.GetTelemetry());
  }
  runtime.Shutdown();
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace
}  // namespace concord

// BENCHMARK_MAIN, plus --telemetry-out=FILE: after the benchmarks run, drive
// one small pipelined workload and export its telemetry snapshot. The CI
// overhead smoke compares BM_PipelinedThroughput between CONCORD_TELEMETRY
// ON and OFF builds.
int main(int argc, char** argv) {
  const std::string telemetry_out = concord::telemetry::TelemetryOutPath(argc, argv);
  std::vector<char*> bench_args;  // benchmark::Initialize rejects foreign flags
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry-out=", 16) != 0) {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!telemetry_out.empty()) {
    concord::Runtime::Options options;
    options.worker_count = 2;
    options.quantum_us = 1000.0;
    concord::Runtime::Callbacks callbacks;
    callbacks.handle_request = [](const concord::RequestView&) {};
    concord::Runtime runtime(options, callbacks);
    runtime.Start();
    for (std::uint64_t id = 0; id < 512; ++id) {
      while (!runtime.Submit(id, 0, nullptr)) {
        std::this_thread::yield();
      }
    }
    runtime.WaitIdle();
    const concord::telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
    runtime.Shutdown();
    if (!concord::telemetry::WriteSnapshotJson(snapshot, telemetry_out)) {
      return 1;
    }
  }
  return 0;
}
