// Ablation: safety-first preemption granularity (§3.1).
//
// The Shinjuku prototype keeps locks safe by disabling preemption across
// entire LevelDB API calls; Concord's 4-line lock counter defers preemption
// only across actual critical sections. The paper's microbenchmark: a
// long-running GET API call (100us) that Shinjuku cannot preempt at all —
// Concord sustained 4x the throughput at the same SLO.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/distribution.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Ablation: lock-safety granularity",
                    "50% 1us requests + 50% 100us long-running GET API calls, 14 workers, "
                    "q=5us: API-level preemption disable vs Concord's lock counter",
                    "fine-grained safety sustains a multiple of the load because long API "
                    "calls stay preemptible (the paper's microbenchmark saw 4x; this "
                    "model's calibration yields ~1.5-2x, same direction)");

  DiscreteMixtureDistribution workload({
      {"short", 0.50, UsToNs(1.0)},
      {"long-get", 0.50, UsToNs(100.0)},
  });
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  SystemConfig api_disable = MakeShinjuku(14, UsToNs(5.0));
  api_disable.name = "Shinjuku (API-level disable)";
  api_disable.nonpreemptible_classes = {1};

  SystemConfig fine_grained = MakeConcord(14, UsToNs(5.0));
  fine_grained.name = "Concord (lock counter)";
  fine_grained.locks.hold_probability = 0.05;
  fine_grained.locks.mean_remaining_ns = UsToNs(0.5);

  TablePrinter table({"system", "p999@180krps", "max_load_krps@50x", "vs_api_disable"});
  double api_crossover = 0.0;
  for (const SystemConfig& config : {api_disable, fine_grained}) {
    const double p999 = RunLoadPoint(config, costs, workload, 180.0, params).p999_slowdown;
    const double crossover =
        FindMaxLoadUnderSlo(config, costs, workload, kPaperSloSlowdown, 10.0, 290.0, params);
    if (api_crossover == 0.0) {
      api_crossover = crossover;
    }
    table.AddRow({config.name, TablePrinter::Fixed(p999, 1), TablePrinter::Fixed(crossover, 1),
                  config.name == api_disable.name
                      ? "-"
                      : TablePrinter::Fixed(crossover / api_crossover, 1) + "x"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
