// Figure 2: overhead of preemption mechanisms vs scheduling quantum.
//
// The paper services 1M requests of 500us each with no-op preemption
// handlers and reports the mechanism overhead, excluding context switching
// and next-request fetch. That experiment is the analytic model of §2.1
// evaluated at S = 500us, which this bench computes from the calibrated cost
// model for posted IPIs (Shinjuku), rdtsc() instrumentation (Compiler
// Interrupts) and Concord's cache-line cooperation.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/overhead_model.h"
#include "src/stats/table.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader(
      "Figure 2", "Preemption-mechanism overhead vs quantum (1M x 500us requests, no-op handlers)",
      "IPIs ~12% at 5us / ~30% at 2us and shrinking with quantum; rdtsc flat ~21%; "
      "Concord ~1-1.5% roughly flat, ~10-12x below IPIs at 2-5us");

  const CostModel costs = DefaultCosts();
  const double service_ns = UsToNs(500.0);
  TablePrinter table({"quantum_us", "posted_ipis(Shinjuku)", "rdtsc_instr(CI)",
                      "concord_coop"});
  for (double q_us : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    const double ipi = PreemptionOverhead(costs, PreemptMechanism::kIpi,
                                          QueueDiscipline::kSingleQueue, UsToNs(q_us), service_ns,
                                          /*include_switch_and_fetch=*/false)
                           .total;
    const double rdtsc = PreemptionOverhead(costs, PreemptMechanism::kRdtscSelf,
                                            QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                            service_ns, false)
                             .total;
    const double coop = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                           QueueDiscipline::kJbsq, UsToNs(q_us), service_ns,
                                           false)
                            .total;
    table.AddRow({TablePrinter::Fixed(q_us, 0), TablePrinter::Percent(ipi, 1),
                  TablePrinter::Percent(rdtsc, 1), TablePrinter::Percent(coop, 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
