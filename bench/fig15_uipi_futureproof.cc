// Figure 15: is Concord future-proof? Mechanism overhead vs quantum for
// Intel user-space IPIs (UIPIs), rdtsc() instrumentation and Concord's
// compiler-enforced cooperation, measured as in Fig. 2 (1M x 500us requests,
// no-op handlers; switch and fetch excluded).

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/overhead_model.h"
#include "src/stats/table.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 15",
                    "Preemption overhead vs quantum: user-space IPIs vs rdtsc vs Concord",
                    "co-op stays ~2x below UIPIs at small quanta (shared cache lines beat "
                    "any interrupt delivery); rdtsc flat ~21%");

  const CostModel costs = DefaultCosts();
  const double service_ns = UsToNs(500.0);
  TablePrinter table({"quantum_us", "user_space_ipis", "rdtsc_instr", "concord_coop",
                      "uipi/coop"});
  for (double q_us : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    const double uipi = PreemptionOverhead(costs, PreemptMechanism::kUipi,
                                           QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                           service_ns, /*include_switch_and_fetch=*/false)
                            .total;
    const double rdtsc = PreemptionOverhead(costs, PreemptMechanism::kRdtscSelf,
                                            QueueDiscipline::kSingleQueue, UsToNs(q_us),
                                            service_ns, false)
                             .total;
    const double coop = PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                                           QueueDiscipline::kJbsq, UsToNs(q_us), service_ns,
                                           false)
                            .total;
    table.AddRow({TablePrinter::Fixed(q_us, 0), TablePrinter::Percent(uipi, 1),
                  TablePrinter::Percent(rdtsc, 1), TablePrinter::Percent(coop, 1),
                  TablePrinter::Fixed(uipi / coop, 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
