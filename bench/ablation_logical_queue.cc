// Ablation: single logical queue + cooperative preemption (§6).
//
// The paper sketches how Concord's mechanisms transfer to work-stealing
// systems (Shenango/Caladan): the networker steers requests to per-worker
// queues, idle workers steal, and a scheduler hyperthread posts cooperative
// preemption signals. This removes the dispatch serialization entirely —
// "such a system would also overcome the throughput bottleneck of a single
// dispatcher" — at the cost of weaker centralized load balancing.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Ablation: single logical queue (work stealing) + co-op preemption",
                    "Concord (JBSQ, single dispatcher) vs co-op work stealing, 14 workers, "
                    "q=5us",
                    "work stealing wins when the single dispatcher saturates (short "
                    "requests, fast NIC); the dispatcher's global view wins on load "
                    "balancing for dispersed workloads");

  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  {
    std::cout << "--- dispatcher-stress: Fixed(1us), fast NIC (networker 80ns) ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
    CostModel costs = DefaultCosts();
    costs.networker_ns = 80.0;
    TablePrinter table({"system", "max_load_krps@50x"});
    for (const SystemConfig& config :
         {MakeConcordNoDispatcherWork(14, UsToNs(100.0)),
          MakeCoopWorkStealing(14, UsToNs(100.0))}) {
      const double crossover = FindMaxLoadUnderSlo(config, costs, *spec.distribution,
                                                   kPaperSloSlowdown, 500.0, 13500.0, params);
      table.AddRow({config.name, TablePrinter::Fixed(crossover, 0)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "--- balancing-stress: Bimodal(99.5:0.5, 0.5:500), q=5us ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalUsr);
    const CostModel costs = DefaultCosts();
    TablePrinter table({"system", "p999@2000krps", "max_load_krps@50x"});
    for (const SystemConfig& config :
         {MakeConcord(14, UsToNs(5.0)), MakeCoopWorkStealing(14, UsToNs(5.0))}) {
      const double p999 =
          RunLoadPoint(config, costs, *spec.distribution, 2000.0, params).p999_slowdown;
      const double crossover = FindMaxLoadUnderSlo(config, costs, *spec.distribution,
                                                   kPaperSloSlowdown, 100.0, 3750.0, params);
      table.AddRow({config.name, TablePrinter::Fixed(p999, 1),
                    TablePrinter::Fixed(crossover, 1)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
