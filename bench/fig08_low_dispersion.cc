// Figure 8: low-dispersion workloads where preemption cannot help:
// Fixed(1us) (left, q=5us and 2us) and the TPCC in-memory-database mix
// (right, q=10us to avoid pointless preemptions).

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run(int argc, char** argv) {
  PrintFigureHeader("Figure 8",
                    "p99.9 slowdown vs load for Fixed(1us) and TPCC, 14 workers",
                    "Fixed(1): all three systems saturate together (dispatcher/networker "
                    "bound), Concord within ~2%. TPCC: Persephone-FCFS best, Concord above "
                    "Shinjuku (cheaper preemption)");

  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(100000, argc, argv);

  {
    std::cout << "--- Fixed(1us), quantum 5us ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kFixed1us);
    // Uniform service means uniform 10us deadlines: EDF degenerates to FCFS
    // and SRPT has nothing to separate — the expected null result.
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(5.0)),
        MakeConcord(14, UsToNs(5.0)),
        MakeEdfNonPreemptive(14, {UsToNs(10.0)}),
        MakeApproxSrpt(14),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(400.0, 3200.0, 8), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 200.0, 3600.0, params, 1);
  }
  {
    std::cout << "--- TPCC, quantum 10us ---\n";
    const WorkloadSpec spec = MakeWorkload(WorkloadId::kTpcc);
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(10.0)),
        MakeConcord(14, UsToNs(10.0)),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(100.0, 725.0, 10), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 50.0, 740.0, params, 1);
  }

  // Fixed(1us) on the real runtime: no long mode at all, so preemption
  // cannot help — the paper's expectation is all three policies tracking
  // each other, Concord paying no penalty for its probes.
  RunLivePolicyComparison(/*quantum_us=*/5.0, /*short_us=*/1.0, /*long_us=*/1.0,
                          /*long_every=*/0, /*request_count=*/10000, /*gap_us=*/4.0, argc, argv);
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Run(argc, argv);
  return 0;
}
