// Figure 14: the drawback of approximate scheduling — Concord's slightly
// higher p99.9 slowdown at LOW loads (a zoom of Fig. 6 left), caused by the
// dispatcher stealing requests during bursts; dispatcher-run requests are
// slower and cannot migrate.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 14",
                    "Low-load zoom of Fig. 6(a): Bimodal(50:1, 50:100), q=5us, 14 workers",
                    "Concord's p99.9 slowdown sits a few (~3) slowdown units above Shinjuku "
                    "at low loads; disabling dispatcher stealing removes the gap");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kBimodalYcsb);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount();

  SystemConfig no_steal = MakeConcordNoDispatcherWork(14, UsToNs(5.0));
  no_steal.name = "Concord w/o stealing";
  const std::vector<SystemConfig> systems = {
      MakePersephoneFcfs(14),
      MakeShinjuku(14, UsToNs(5.0)),
      MakeConcord(14, UsToNs(5.0)),
      no_steal,
  };
  RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(20.0, 160.0, 8), params);

  // The headline number: Concord-minus-Shinjuku p99.9 gap averaged over the
  // low-load region.
  double gap_sum = 0.0;
  int points = 0;
  for (double load : {40.0, 70.0, 100.0, 130.0}) {
    const double shinjuku =
        RunLoadPoint(MakeShinjuku(14, UsToNs(5.0)), costs, *spec.distribution, load, params)
            .p999_slowdown;
    const double concord =
        RunLoadPoint(MakeConcord(14, UsToNs(5.0)), costs, *spec.distribution, load, params)
            .p999_slowdown;
    gap_sum += concord - shinjuku;
    ++points;
  }
  std::cout << "mean low-load p99.9 slowdown gap (Concord - Shinjuku): "
            << TablePrinter::Fixed(gap_sum / points, 2) << " (paper: ~+3)\n";
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
