// Figure 9: the LevelDB server with 50% GETs (600ns) and 50% full-database
// SCANs (500us), 14 workers, quanta of 5us and 2us.
//
// Service times are the paper's measured LevelDB numbers (validated by this
// repo's kvstore microbenchmarks); the scheduling dynamics run in the server
// model.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 9",
                    "p99.9 slowdown vs load, LevelDB 50% GET / 50% SCAN, 14 workers",
                    "Concord sustains ~52% more load than Shinjuku at the 50x SLO for q=5us "
                    "and ~83% more for q=2us; Persephone-FCFS crosses far earlier");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  for (double q_us : {5.0, 2.0}) {
    std::cout << "--- scheduling quantum " << q_us << " us ---\n";
    const std::vector<SystemConfig> systems = {
        MakePersephoneFcfs(14),
        MakeShinjuku(14, UsToNs(q_us)),
        MakeConcord(14, UsToNs(q_us)),
    };
    RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(5.0, 55.0, 11), params);
    PrintSloCrossovers(systems, costs, *spec.distribution, 2.0, 58.0, params, 1);
  }
}

}  // namespace
}  // namespace concord

int main() {
  concord::Run();
  return 0;
}
