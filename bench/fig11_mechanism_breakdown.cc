// Figure 11: contribution of each Concord mechanism, cumulatively enabled on
// top of Shinjuku, for the LevelDB GET/SCAN workload at q=2us:
//   Shinjuku (IPIs+SQ) -> Co-op+SQ -> Co-op+JBSQ(2) -> full Concord.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/systems.h"
#include "src/workload/workload_factory.h"

namespace concord {
namespace {

// Runs the real runtime once and prints its mechanism counters next to the
// model's Eq. 3 prediction; the snapshot honors --telemetry-out=FILE.
void RunLiveSection(int argc, char** argv) {
  constexpr double kQuantumUs = 500.0;
  constexpr double kServiceUs = 2600.0;  // floor(S/q) = 5 preemptions/request
  std::cout << "--- live runtime cross-check (q=" << kQuantumUs << "us, S=" << kServiceUs
            << "us spin) ---\n";
  const telemetry::TelemetrySnapshot snapshot = RunLiveSpinTelemetry(
      kQuantumUs, kServiceUs, /*request_count=*/24, /*worker_count=*/2, argc, argv);
  PrintLiveCounterCheck(snapshot, kQuantumUs, kServiceUs);
  // The same run's exact latency anatomy: the live counterpart of the
  // figure's mechanism attribution, per class and stage.
  PrintLiveAnatomy(snapshot);
  MaybeWriteTelemetry(snapshot, argc, argv);
}

void Run() {
  PrintFigureHeader("Figure 11",
                    "Cumulative mechanism ablation, LevelDB 50% GET / 50% SCAN, q=2us",
                    "each step raises the sustainable load: Shinjuku < Co-op+SQ < "
                    "Co-op+JBSQ(2) < Concord (paper: ~19 -> 22.5 -> 32 -> 35 kRps)");

  const WorkloadSpec spec = MakeWorkload(WorkloadId::kLevelDbGetScan);
  const CostModel costs = DefaultCosts();
  ExperimentParams params;
  params.request_count = BenchRequestCount(60000);

  const double q_ns = UsToNs(2.0);
  const std::vector<SystemConfig> systems = {
      MakeShinjuku(14, q_ns),
      MakeCoopSingleQueue(14, q_ns),
      MakeCoopJbsq(14, q_ns),
      MakeConcord(14, q_ns),
  };
  RunSlowdownSweep(systems, costs, *spec.distribution, LinearLoads(5.0, 55.0, 11), params);
  PrintSloCrossovers(systems, costs, *spec.distribution, 2.0, 58.0, params,
                     /*baseline_index=*/0);
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Run();
  concord::RunLiveSection(argc, argv);
  return 0;
}
