// Figure 12: reduction in total preemptive-scheduling overhead vs quantum,
// broken down by mechanism: Shinjuku (IPIs + single queue), Co-op + single
// queue, and Co-op + JBSQ(2).
//
// Unlike Fig. 2, this accounting includes the context switch and the
// next-request fetch (Eqs. 3-4), which is where JBSQ contributes.

#include <iostream>

#include "bench/figure_common.h"
#include "src/common/cycles.h"
#include "src/model/overhead_model.h"
#include "src/stats/table.h"

namespace concord {
namespace {

void Run() {
  PrintFigureHeader("Figure 12",
                    "Full preemption overhead vs quantum (1M x 500us requests), including "
                    "switch + next-request fetch",
                    "Concord (co-op + JBSQ) is ~4x below Shinjuku across small quanta; "
                    "co-op alone accounts for most of the reduction");

  const CostModel costs = DefaultCosts();
  const double service_ns = UsToNs(500.0);
  TablePrinter table({"quantum_us", "shinjuku_IPIs+SQ", "coop+SQ", "concord_coop+JBSQ2",
                      "shinjuku/concord"});
  for (double q_us : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    const double shinjuku =
        PreemptionOverhead(costs, PreemptMechanism::kIpi, QueueDiscipline::kSingleQueue,
                           UsToNs(q_us), service_ns, /*include_switch_and_fetch=*/true)
            .total;
    const double coop_sq =
        PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine,
                           QueueDiscipline::kSingleQueue, UsToNs(q_us), service_ns, true)
            .total;
    const double concord =
        PreemptionOverhead(costs, PreemptMechanism::kCoopCacheLine, QueueDiscipline::kJbsq,
                           UsToNs(q_us), service_ns, true)
            .total;
    table.AddRow({TablePrinter::Fixed(q_us, 0), TablePrinter::Percent(shinjuku, 1),
                  TablePrinter::Percent(coop_sq, 1), TablePrinter::Percent(concord, 1),
                  TablePrinter::Fixed(shinjuku / concord, 1)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

// Live counterpart of the table above: the runtime's own preemption
// counters, per request, against floor(S/q). Honors --telemetry-out=FILE.
void RunLiveSection(int argc, char** argv) {
  constexpr double kQuantumUs = 250.0;
  constexpr double kServiceUs = 2000.0;  // floor(S/q) = 8 preemptions/request
  std::cout << "--- live runtime cross-check (q=" << kQuantumUs << "us, S=" << kServiceUs
            << "us spin) ---\n";
  const telemetry::TelemetrySnapshot snapshot = RunLiveSpinTelemetry(
      kQuantumUs, kServiceUs, /*request_count=*/24, /*worker_count=*/2, argc, argv);
  PrintLiveCounterCheck(snapshot, kQuantumUs, kServiceUs);
  // Requeue wait is the preemption-induced stage: fewer preemptions must
  // show up here as less non-service time between first run and finish.
  PrintLiveAnatomy(snapshot);
  MaybeWriteTelemetry(snapshot, argc, argv);
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  concord::Run();
  concord::RunLiveSection(argc, argv);
  return 0;
}
