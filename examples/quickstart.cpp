// Quickstart: the paper's three-callback API (§4.1) end to end.
//
// Starts a Concord runtime, serves a bimodal synthetic workload (99.5% short
// requests, 0.5% long ones) through an open-loop Poisson load generator, and
// prints the slowdown profile. The long requests are 1000x the short ones,
// yet the preemptive quantum keeps the short requests' tail slowdown far
// below what run-to-completion would produce.
//
// Usage: quickstart [offered_krps] [request_count] [--telemetry-out=FILE]
//                   [--trace-out=FILE] [--metrics-out=FILE]
//                   [--metrics-window-ms=MS] [--policy=NAME] [--shards=N]
//                   [--placement=NAME] [--statusz-port=N] [--flight-dump=FILE]
//
// --statusz-port=N serves live introspection on 127.0.0.1:N while the run is
// in flight (port 0 picks an ephemeral port, printed at startup):
//   /statusz   human-readable runtime status + latency anatomy
//   /metricsz  Prometheus text exposition (the MetricsSampler output)
//   /flightz   flight-recorder trigger status (JSON)
// --flight-dump=FILE arms the anomaly-triggered flight recorder; on a
// deadline-miss burst, sustained negative slack, ingress backpressure, or a
// p99 slowdown spike it dumps the recent scheduling past to FILE as a
// concord.trace.v1 file for offline autopsy with concord_trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/synthetic.h"
#include "src/loadgen/loadgen.h"
#include "src/obs/status_server.h"
#include "src/runtime/policy.h"
#include "src/runtime/sharded_runtime.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/metrics_sampler.h"
#include "src/workload/workload_factory.h"

int main(int argc, char** argv) {
  std::vector<const char*> positional;  // flags (--*) are not positional
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      positional.push_back(argv[i]);
    }
  }
  const double offered_krps = !positional.empty() ? std::atof(positional[0]) : 2.0;
  const std::uint64_t count =
      positional.size() > 1 ? static_cast<std::uint64_t>(std::atoll(positional[1])) : 2000;

  // A bimodal workload: mostly 20us requests with occasional 2ms monsters.
  concord::DiscreteMixtureDistribution workload({
      {"short", 0.995, 20.0 * 1000.0},
      {"long", 0.005, 2000.0 * 1000.0},
  });
  const concord::SyntheticService service = concord::SyntheticService::FromDistribution(workload);
  concord::OpenLoopLoadgen loadgen(workload, {20.0, 2000.0}, /*seed=*/1);

  const std::string trace_out = concord::telemetry::TraceOutPath(argc, argv);
  const std::string metrics_out = concord::telemetry::MetricsOutPath(argc, argv);
  const std::string flight_dump = concord::telemetry::OutPathFromFlagOrEnv(
      argc, argv, "--flight-dump=", "CONCORD_FLIGHT_DUMP");
  const std::string statusz_port = concord::telemetry::OutPathFromFlagOrEnv(
      argc, argv, "--statusz-port=", "CONCORD_STATUSZ_PORT");
  const concord::RuntimeSelection selection = concord::SelectionFromArgsOrEnv(argc, argv);

  concord::ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 50.0;
  options.shard.jbsq_depth = 2;
  options.shard.work_conserving_dispatcher = true;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  options.allowed_cpus = selection.cpus;
  if (!trace_out.empty()) {
    options.shard.trace_buffer_capacity = std::size_t{1} << 17;  // scheduling-trace capture on
  }

  concord::Runtime::Callbacks callbacks;
  callbacks.setup = [] { std::puts("setup(): global state initialized"); };
  callbacks.setup_worker = [](int worker) {
    std::printf("setup_worker(%d)\n", worker);
  };
  callbacks.handle_request = [&service](const concord::RequestView& view) {
    service.Handle(view);
  };
  // Multi-shard runs complete on every shard's dispatcher concurrently.
  callbacks.on_complete = selection.shard_count > 1 ? loadgen.LockedCompletionHook()
                                                    : loadgen.CompletionHook();

  concord::ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<concord::trace::MetricsSampler> sampler;
  // The /metricsz endpoint serves the sampler's Prometheus exposition, so a
  // statusz port implies sampling even without --metrics-out=.
  if (!metrics_out.empty() || !statusz_port.empty()) {
    concord::trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = concord::telemetry::MetricsWindowMs(argc, argv);
    if (!metrics_out.empty() && metrics_out != "-") {
      sampler_options.exposition_path = metrics_out + ".prom";
    }
    sampler = std::make_unique<concord::trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  std::unique_ptr<concord::trace::FlightRecorder> flight;
  if (!flight_dump.empty()) {
    concord::trace::FlightRecorderOptions flight_options;
    flight_options.dump_path = flight_dump;
    // Trigger set tuned for this example's bimodal workload: fire on any
    // negative-slack burst, on sustained backpressure, or on a tail blowup.
    flight_options.deadline_miss_burst = 16;
    flight_options.ingress_reject_burst = 256;
    flight_options.p99_slowdown = 500.0;
    flight_options.tsc_ghz = runtime.GetTelemetry().tsc_ghz;
    flight_options.worker_count = options.shard.worker_count;
    flight_options.jbsq_depth = options.shard.jbsq_depth;
    flight_options.quantum_us = options.shard.quantum_us;
    flight_options.policy = concord::PolicyKindName(selection.policy);
    flight = std::make_unique<concord::trace::FlightRecorder>(
        flight_options, [&runtime] { return runtime.GetTelemetry(); });
    flight->Start();
  }
  std::unique_ptr<concord::obs::StatusServer> statusz;
  if (!statusz_port.empty()) {
    concord::obs::StatusServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(std::atoi(statusz_port.c_str()));
    statusz = std::make_unique<concord::obs::StatusServer>(server_options);
    statusz->Handle("/statusz", "text/plain; charset=utf-8", [&runtime, &flight] {
      const concord::telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
      const concord::telemetry::WorkerSnapshot totals = snapshot.Totals();
      std::string body = "concord quickstart\n";
      body += "policy: " + snapshot.policy + "\n";
      body += "completed: " + std::to_string(snapshot.RequestsCompleted()) + "\n";
      body += "preemptions requested: " + std::to_string(totals.preemptions_requested) +
              ", honored: " + std::to_string(totals.probe_yields) + "\n";
      body += "ingress rejected: " + std::to_string(snapshot.dispatcher.ingress_rejected) + "\n";
      body += "\nlatency anatomy (per class):\n" + snapshot.anatomy.SummaryText(snapshot.tsc_ghz);
      if (flight != nullptr) {
        body += "\nflight recorder: " + flight->StatusJson() + "\n";
      }
      return body;
    });
    statusz->Handle("/metricsz", "text/plain; version=0.0.4", [&sampler] {
      return sampler->ToPrometheusText();
    });
    if (flight != nullptr) {
      statusz->Handle("/flightz", "application/json", [&flight] { return flight->StatusJson(); });
    }
    if (statusz->Start()) {
      std::printf("statusz: serving http://127.0.0.1:%u/statusz (and /metricsz)\n",
                  static_cast<unsigned>(statusz->port()));
    } else {
      std::fprintf(stderr, "statusz: failed to bind 127.0.0.1:%s\n", statusz_port.c_str());
      statusz.reset();
    }
  }
  std::printf("driving %llu requests at %.1f kRps (policy=%s, %d shard%s)...\n",
              static_cast<unsigned long long>(count), offered_krps,
              concord::PolicyKindName(selection.policy), selection.shard_count,
              selection.shard_count == 1 ? "" : "s");
  const concord::LoadgenReport report = loadgen.Run(&runtime, offered_krps, count);
  const concord::Runtime::Stats stats = runtime.GetStats();
  const concord::telemetry::TelemetrySnapshot telemetry = runtime.GetTelemetry();
  bool export_ok = true;
  if (statusz != nullptr) {
    statusz->Stop();
  }
  if (flight != nullptr) {
    flight->Stop();
    if (flight->triggers_fired() > 0) {
      std::printf("flight recorder: %llu trigger(s), %llu dump(s); last: %s\n",
                  static_cast<unsigned long long>(flight->triggers_fired()),
                  static_cast<unsigned long long>(flight->dumps_written()),
                  flight->last_trigger().c_str());
    }
  }
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    if (!metrics_out.empty()) {
      export_ok = sampler->WriteSeries(metrics_out) && export_ok;
    }
  }
  runtime.Shutdown();
  if (!trace_out.empty()) {
    // One capture per shard, each independently checkable by concord_trace;
    // single-shard keeps the plain path.
    for (int s = 0; s < runtime.shard_count(); ++s) {
      export_ok = concord::trace::WriteChromeTrace(
                      runtime.GetShardTrace(s),
                      concord::telemetry::ShardedOutPath(trace_out, s, runtime.shard_count())) &&
                  export_ok;
    }
  }

  std::printf("\ncompleted %llu/%llu (dropped %llu), achieved %.2f kRps\n",
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.issued),
              static_cast<unsigned long long>(report.dropped), report.achieved_krps);
  std::printf("slowdown: p50=%.1f p99=%.1f p99.9=%.1f mean=%.1f\n", report.p50_slowdown,
              report.p99_slowdown, report.p999_slowdown, report.mean_slowdown);
  std::printf("preemptions=%llu dispatcher_completed=%llu\n",
              static_cast<unsigned long long>(stats.preemptions),
              static_cast<unsigned long long>(stats.dispatcher_completed));
  if (telemetry.enabled) {
    const concord::telemetry::WorkerSnapshot totals = telemetry.Totals();
    std::printf("telemetry: probe_polls=%llu preempt_requested=%llu preempt_honored=%llu "
                "dispatcher_quanta=%llu\n",
                static_cast<unsigned long long>(totals.probe_polls),
                static_cast<unsigned long long>(totals.preemptions_requested),
                static_cast<unsigned long long>(totals.probe_yields),
                static_cast<unsigned long long>(telemetry.dispatcher.quanta_run));
  }
  export_ok = concord::telemetry::MaybeExportSnapshot(telemetry, argc, argv) && export_ok;
  return export_ok ? 0 : 1;
}
