// Quickstart: the paper's three-callback API (§4.1) end to end.
//
// Starts a Concord runtime, serves a bimodal synthetic workload (99.5% short
// requests, 0.5% long ones) through an open-loop Poisson load generator, and
// prints the slowdown profile. The long requests are 1000x the short ones,
// yet the preemptive quantum keeps the short requests' tail slowdown far
// below what run-to-completion would produce.
//
// Usage: quickstart [offered_krps] [request_count] [--telemetry-out=FILE]
//                   [--trace-out=FILE] [--metrics-out=FILE]
//                   [--metrics-window-ms=MS] [--policy=NAME] [--shards=N]
//                   [--placement=NAME]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/synthetic.h"
#include "src/loadgen/loadgen.h"
#include "src/runtime/policy.h"
#include "src/runtime/sharded_runtime.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics_sampler.h"
#include "src/workload/workload_factory.h"

int main(int argc, char** argv) {
  std::vector<const char*> positional;  // flags (--*) are not positional
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      positional.push_back(argv[i]);
    }
  }
  const double offered_krps = !positional.empty() ? std::atof(positional[0]) : 2.0;
  const std::uint64_t count =
      positional.size() > 1 ? static_cast<std::uint64_t>(std::atoll(positional[1])) : 2000;

  // A bimodal workload: mostly 20us requests with occasional 2ms monsters.
  concord::DiscreteMixtureDistribution workload({
      {"short", 0.995, 20.0 * 1000.0},
      {"long", 0.005, 2000.0 * 1000.0},
  });
  const concord::SyntheticService service = concord::SyntheticService::FromDistribution(workload);
  concord::OpenLoopLoadgen loadgen(workload, {20.0, 2000.0}, /*seed=*/1);

  const std::string trace_out = concord::telemetry::TraceOutPath(argc, argv);
  const std::string metrics_out = concord::telemetry::MetricsOutPath(argc, argv);
  const concord::RuntimeSelection selection = concord::SelectionFromArgsOrEnv(argc, argv);

  concord::ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 50.0;
  options.shard.jbsq_depth = 2;
  options.shard.work_conserving_dispatcher = true;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  if (!trace_out.empty()) {
    options.shard.trace_buffer_capacity = std::size_t{1} << 17;  // scheduling-trace capture on
  }

  concord::Runtime::Callbacks callbacks;
  callbacks.setup = [] { std::puts("setup(): global state initialized"); };
  callbacks.setup_worker = [](int worker) {
    std::printf("setup_worker(%d)\n", worker);
  };
  callbacks.handle_request = [&service](const concord::RequestView& view) {
    service.Handle(view);
  };
  // Multi-shard runs complete on every shard's dispatcher concurrently.
  callbacks.on_complete = selection.shard_count > 1 ? loadgen.LockedCompletionHook()
                                                    : loadgen.CompletionHook();

  concord::ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<concord::trace::MetricsSampler> sampler;
  if (!metrics_out.empty()) {
    concord::trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = concord::telemetry::MetricsWindowMs(argc, argv);
    if (metrics_out != "-") {
      sampler_options.exposition_path = metrics_out + ".prom";
    }
    sampler = std::make_unique<concord::trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  std::printf("driving %llu requests at %.1f kRps (policy=%s, %d shard%s)...\n",
              static_cast<unsigned long long>(count), offered_krps,
              concord::PolicyKindName(selection.policy), selection.shard_count,
              selection.shard_count == 1 ? "" : "s");
  const concord::LoadgenReport report = loadgen.Run(&runtime, offered_krps, count);
  const concord::Runtime::Stats stats = runtime.GetStats();
  const concord::telemetry::TelemetrySnapshot telemetry = runtime.GetTelemetry();
  bool export_ok = true;
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    export_ok = sampler->WriteSeries(metrics_out) && export_ok;
  }
  runtime.Shutdown();
  if (!trace_out.empty()) {
    // One capture per shard, each independently checkable by concord_trace;
    // single-shard keeps the plain path.
    for (int s = 0; s < runtime.shard_count(); ++s) {
      export_ok = concord::trace::WriteChromeTrace(
                      runtime.GetShardTrace(s),
                      concord::telemetry::ShardedOutPath(trace_out, s, runtime.shard_count())) &&
                  export_ok;
    }
  }

  std::printf("\ncompleted %llu/%llu (dropped %llu), achieved %.2f kRps\n",
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.issued),
              static_cast<unsigned long long>(report.dropped), report.achieved_krps);
  std::printf("slowdown: p50=%.1f p99=%.1f p99.9=%.1f mean=%.1f\n", report.p50_slowdown,
              report.p99_slowdown, report.p999_slowdown, report.mean_slowdown);
  std::printf("preemptions=%llu dispatcher_completed=%llu\n",
              static_cast<unsigned long long>(stats.preemptions),
              static_cast<unsigned long long>(stats.dispatcher_completed));
  if (telemetry.enabled) {
    const concord::telemetry::WorkerSnapshot totals = telemetry.Totals();
    std::printf("telemetry: probe_polls=%llu preempt_requested=%llu preempt_honored=%llu "
                "dispatcher_quanta=%llu\n",
                static_cast<unsigned long long>(totals.probe_polls),
                static_cast<unsigned long long>(totals.preemptions_requested),
                static_cast<unsigned long long>(totals.probe_yields),
                static_cast<unsigned long long>(telemetry.dispatcher.quanta_run));
  }
  export_ok = concord::telemetry::MaybeExportSnapshot(telemetry, argc, argv) && export_ok;
  return export_ok ? 0 : 1;
}
