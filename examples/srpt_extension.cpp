// Extending Concord's dispatcher with a new policy: Shortest Remaining
// Processing Time (SRPT).
//
// §3.1 argues that keeping a dispatcher with global visibility makes it easy
// to go beyond FCFS/PS — single-logical-queue systems cannot, because no
// core sees all requests. This example flips the central queue policy to
// SRPT and shows the effect on a high-dispersion workload: the short
// requests' tail tightens because nearly-finished work is never stuck
// behind fresh long requests (SRPT's classic starvation risk only bites
// near saturation; try higher loads to see it).
//
// Usage: srpt_extension [krps] [count]

#include <cstdlib>
#include <iostream>

#include "src/common/cycles.h"
#include "src/model/server_model.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

int main(int argc, char** argv) {
  const double krps = argc > 1 ? std::atof(argv[1]) : 200.0;
  const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 150000;

  const concord::WorkloadSpec spec = concord::MakeWorkload(concord::WorkloadId::kBimodalYcsb);
  const concord::CostModel costs = concord::DefaultCosts();

  concord::SystemConfig fcfs = concord::MakeConcord(14, concord::UsToNs(5.0));
  fcfs.name = "Concord (FCFS queue)";
  concord::SystemConfig srpt = fcfs;
  srpt.name = "Concord (SRPT queue)";
  srpt.central_policy = concord::CentralQueuePolicy::kSrpt;

  std::cout << "Bimodal(50:1, 50:100) at " << krps << " kRps, 14 workers, q=5us\n\n";
  concord::TablePrinter table({"policy", "mean_slowdown", "p50", "p99.9(all)", "p99.9(short)",
                               "p99.9(long)"});
  for (const concord::SystemConfig& config : {fcfs, srpt}) {
    concord::ServerModel model(config, costs, /*seed=*/11);
    const concord::RunResult result = model.Run(*spec.distribution, krps, count);
    table.AddRow({config.name, concord::TablePrinter::Fixed(result.slowdown.MeanSlowdown(), 2),
                  concord::TablePrinter::Fixed(result.slowdown.QuantileSlowdown(0.5), 2),
                  concord::TablePrinter::Fixed(result.slowdown.P999Slowdown(), 2),
                  concord::TablePrinter::Fixed(result.slowdown.ClassQuantileSlowdown(0, 0.999), 2),
                  concord::TablePrinter::Fixed(result.slowdown.ClassQuantileSlowdown(1, 0.999), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nSRPT tightens the short-request tail (nearly-finished work is never stuck\n"
               "behind fresh long requests) — a policy swap that required changing one\n"
               "dispatcher setting, possible because the dispatcher sees every request.\n";
  return 0;
}
