// Policy playground: compare scheduling systems on any named workload using
// the calibrated server model — the instrument behind Figs. 6-14.
//
// Usage: policy_playground [workload] [quantum_us] [workers] [max_krps]
//   workload: bimodal-ycsb | bimodal-usr | fixed-1us | tpcc |
//             leveldb-getscan | leveldb-zippydb
//
// Prints the slowdown-vs-load series for Persephone-FCFS, Shinjuku, Concord
// and the Fig. 11 ablations, plus each system's maximum load under the 50x
// p99.9-slowdown SLO.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/common/cycles.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/workload_factory.h"

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "bimodal-ycsb";
  const double quantum_us = argc > 2 ? std::atof(argv[2]) : 5.0;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 14;

  concord::WorkloadId id;
  if (!concord::ParseWorkloadName(workload_name, &id)) {
    std::fprintf(stderr,
                 "unknown workload '%s'; choose from: bimodal-ycsb bimodal-usr fixed-1us tpcc "
                 "leveldb-getscan leveldb-zippydb\n",
                 workload_name.c_str());
    return 1;
  }
  const concord::WorkloadSpec spec = concord::MakeWorkload(id);
  // Default sweep ceiling: a bit above the worker-bound capacity.
  const double capacity_krps =
      static_cast<double>(workers) / concord::NsToUs(spec.distribution->MeanNs()) * 1000.0;
  const double max_krps = argc > 4 ? std::atof(argv[4]) : 1.1 * capacity_krps;

  std::printf("workload: %s (%s), mean service %.2f us, dispersion %.0fx\n", spec.name.c_str(),
              spec.description.c_str(), concord::NsToUs(spec.distribution->MeanNs()),
              spec.distribution->Dispersion());
  std::printf("systems: %d workers, quantum %.1f us, sweep up to %.0f kRps\n\n", workers,
              quantum_us, max_krps);

  const concord::CostModel costs = concord::DefaultCosts();
  concord::ExperimentParams params;
  params.request_count = 100000;
  const double q_ns = concord::UsToNs(quantum_us);

  const std::vector<concord::SystemConfig> systems = {
      concord::MakePersephoneFcfs(workers),     concord::MakeShinjuku(workers, q_ns),
      concord::MakeCoopSingleQueue(workers, q_ns), concord::MakeCoopJbsq(workers, q_ns),
      concord::MakeConcord(workers, q_ns),
  };

  concord::TablePrinter sweep({"load_krps", "Persephone-FCFS", "Shinjuku", "Co-op+SQ",
                               "Co-op+JBSQ(2)", "Concord"});
  for (double load : concord::LinearLoads(0.1 * max_krps, max_krps, 10)) {
    std::vector<std::string> row = {concord::TablePrinter::Fixed(load, 1)};
    for (const concord::SystemConfig& system : systems) {
      const concord::LoadPoint point =
          concord::RunLoadPoint(system, costs, *spec.distribution, load, params);
      row.push_back(concord::TablePrinter::Fixed(point.p999_slowdown, 1));
    }
    sweep.AddRow(std::move(row));
  }
  sweep.Print(std::cout);

  std::cout << "\nmax load meeting the 50x p99.9-slowdown SLO:\n";
  concord::TablePrinter crossovers({"system", "max_krps", "vs_Shinjuku"});
  double shinjuku_crossover = 0.0;
  std::vector<double> results;
  for (const concord::SystemConfig& system : systems) {
    const double crossover = concord::FindMaxLoadUnderSlo(
        system, costs, *spec.distribution, concord::kPaperSloSlowdown, 0.02 * max_krps,
        1.05 * max_krps, params);
    results.push_back(crossover);
    if (system.name == "Shinjuku") {
      shinjuku_crossover = crossover;
    }
  }
  for (std::size_t i = 0; i < systems.size(); ++i) {
    crossovers.AddRow({systems[i].name, concord::TablePrinter::Fixed(results[i], 1),
                       shinjuku_crossover > 0.0
                           ? concord::TablePrinter::Percent(results[i] / shinjuku_crossover - 1.0, 0)
                           : "-"});
  }
  crossovers.Print(std::cout);
  return 0;
}
