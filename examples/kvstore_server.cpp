// LevelDB-like key-value server on the Concord runtime: the paper's §5.3
// application, end to end on real threads.
//
// Populates the store with 15,000 keys (as in the paper), then serves the
// ZippyDB-style mix — GETs, PUTs, DELETEs and full-database SCANs — under
// preemptive scheduling. SCANs execute probes at every iterator step, so a
// multi-hundred-microsecond scan never blocks a GET for more than about a
// quantum; PUT/DELETE critical sections are protected by the lock-safety
// counter and are never preempted mid-mutation.
//
// Usage: kvstore_server [offered_krps] [request_count] [scan_percent]
//                       [--telemetry-out=FILE] [--trace-out=FILE]
//                       [--metrics-out=FILE] [--metrics-window-ms=MS]
//                       [--policy=NAME] [--shards=N] [--placement=NAME]
//
// Network mode: --listen=PORT (0 = ephemeral) serves the same store over the
// Concord RPC framing (docs/networking.md) instead of the in-process
// loadgen: requests arrive from net_loadgen over loopback TCP, responses are
// written from the completion sink, and the run lasts --duration-s= seconds
// (default 5). --statusz-port=N additionally serves live /statusz including
// the socket-layer counters. On exit the server checks the wire conservation
// identities (frames decoded == submitted + rejected; submitted ==
// responses + dropped) and fails loudly when they do not hold.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kvstore/db.h"
#include "src/loadgen/loadgen.h"
#include "src/net/server.h"
#include "src/obs/status_server.h"
#include "src/runtime/policy.h"
#include "src/runtime/sharded_runtime.h"
#include "src/telemetry/export.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics_sampler.h"
#include "src/workload/distribution.h"

namespace {

enum RequestClass { kGet = 0, kPut = 1, kDelete = 2, kScan = 3 };

// --listen= mode: the kvstore behind the epoll RPC front-end. Returns the
// process exit status. Kept separate from the loadgen path below so each
// mode reads top to bottom.
int RunListenServer(int argc, char** argv, int listen_port) {
  const double duration_s = static_cast<double>(std::max<long long>(
      1, concord::telemetry::IntFromFlagOrEnv(argc, argv, "--duration-s=",
                                              "CONCORD_NET_DURATION_S", 5)));
  const std::string statusz_port = concord::telemetry::OutPathFromFlagOrEnv(
      argc, argv, "--statusz-port=", "CONCORD_STATUSZ_PORT");
  const std::string trace_out = concord::telemetry::TraceOutPath(argc, argv);
  const concord::RuntimeSelection selection = concord::SelectionFromArgsOrEnv(argc, argv);

  concord::Db db;
  constexpr int kKeys = 15000;

  concord::ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 50.0;
  options.shard.jbsq_depth = 2;
  options.shard.work_conserving_dispatcher = true;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  options.allowed_cpus = selection.cpus;
  if (!trace_out.empty()) {
    options.shard.trace_buffer_capacity = std::size_t{1} << 17;
  }

  concord::net::RpcServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(listen_port);
  concord::net::RpcServer server(server_options);

  concord::Runtime::Callbacks callbacks;
  callbacks.setup = [&db] {
    concord::PopulateDb(&db, kKeys, 64);
    std::printf("populated %d keys, %llu live\n", kKeys,
                static_cast<unsigned long long>(db.ScanCount()));
  };
  callbacks.handle_request = [&db](const concord::RequestView& view) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(view.id % kKeys));
    switch (view.request_class) {
      case kGet: {
        std::string value;
        db.Get(concord::Slice(key), &value);
        break;
      }
      case kPut:
        db.Put(concord::Slice(key), concord::Slice("updated-value"));
        break;
      case kDelete:
        db.Delete(concord::Slice(key));
        db.Put(concord::Slice(key), concord::Slice("reinserted"));
        break;
      case kScan:
        (void)db.ScanCount();
        break;
      default:
        break;
    }
  };
  // Responses flow through the socket sink, not an in-process hook.
  callbacks.completion_sink = server.sink();

  concord::ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  if (!server.Start(&runtime)) {
    std::fprintf(stderr, "failed to bind 127.0.0.1:%d\n", listen_port);
    runtime.Shutdown();
    return 1;
  }
  // Scrape line for drivers (CI smoke): the resolved ephemeral port.
  std::printf("listening on 127.0.0.1:%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::unique_ptr<concord::obs::StatusServer> statusz;
  if (!statusz_port.empty()) {
    concord::obs::StatusServer::Options status_options;
    status_options.port = static_cast<std::uint16_t>(std::atoi(statusz_port.c_str()));
    statusz = std::make_unique<concord::obs::StatusServer>(status_options);
    statusz->Handle("/statusz", "text/plain; charset=utf-8", [&runtime, &server] {
      const concord::telemetry::TelemetrySnapshot snapshot = runtime.GetTelemetry();
      const concord::telemetry::NetSnapshot net = server.Snapshot();
      std::string body = "concord kvstore_server (listen mode)\n";
      body += "completed: " + std::to_string(snapshot.RequestsCompleted()) + "\n";
      body += "net.connections: opened " + std::to_string(net.connections_opened) +
              ", closed " + std::to_string(net.connections_closed) + "\n";
      body += "net.frames_decoded: " + std::to_string(net.frames_decoded) +
              " (decode errors " + std::to_string(net.decode_errors) + ")\n";
      body += "net.requests: submitted " + std::to_string(net.requests_submitted) +
              ", rejected " + std::to_string(net.requests_rejected) + "\n";
      body += "net.responses: written " + std::to_string(net.responses_written) +
              ", dropped " + std::to_string(net.responses_dropped) + "\n";
      return body;
    });
    if (statusz->Start()) {
      std::printf("statusz: serving http://127.0.0.1:%u/statusz\n",
                  static_cast<unsigned>(statusz->port()));
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "statusz: failed to bind 127.0.0.1:%s\n", statusz_port.c_str());
      statusz.reset();
    }
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long long>(duration_s * 1000.0)));

  // Stop the front-end first: it drains in-flight requests through the
  // still-running runtime, flushes responses, and releases its
  // RequestSources. Only then is it safe to shut the runtime down.
  server.Stop();
  const concord::telemetry::NetSnapshot net = server.Snapshot();
  if (statusz != nullptr) {
    statusz->Stop();
  }
  concord::telemetry::TelemetrySnapshot telemetry = runtime.GetTelemetry();
  telemetry.net = net;  // merge socket-layer counters into the export
  runtime.Shutdown();

  bool export_ok = true;
  if (!trace_out.empty()) {
    for (int s = 0; s < runtime.shard_count(); ++s) {
      export_ok = concord::trace::WriteChromeTrace(
                      runtime.GetShardTrace(s),
                      concord::telemetry::ShardedOutPath(trace_out, s, runtime.shard_count())) &&
                  export_ok;
    }
  }
  export_ok = concord::telemetry::MaybeExportSnapshot(telemetry, argc, argv) && export_ok;

  std::printf("net: %llu connections, %llu frames decoded (%llu decode errors)\n",
              static_cast<unsigned long long>(net.connections_opened),
              static_cast<unsigned long long>(net.frames_decoded),
              static_cast<unsigned long long>(net.decode_errors));
  std::printf("net: %llu submitted, %llu rejected, %llu responses, %llu dropped\n",
              static_cast<unsigned long long>(net.requests_submitted),
              static_cast<unsigned long long>(net.requests_rejected),
              static_cast<unsigned long long>(net.responses_written),
              static_cast<unsigned long long>(net.responses_dropped));
  const bool conserved = server.ConservationHolds();
  std::printf("conservation: %s\n", conserved ? "OK" : "VIOLATION");
  return conserved && export_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const long long listen_port = concord::telemetry::IntFromFlagOrEnv(
      argc, argv, "--listen=", "CONCORD_LISTEN_PORT", -1);
  if (listen_port >= 0) {
    return RunListenServer(argc, argv, static_cast<int>(listen_port));
  }
  std::vector<const char*> positional;  // flags (--*) are not positional
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      positional.push_back(argv[i]);
    }
  }
  const double offered_krps = !positional.empty() ? std::atof(positional[0]) : 3.0;
  const std::uint64_t count =
      positional.size() > 1 ? static_cast<std::uint64_t>(std::atoll(positional[1])) : 3000;
  const double scan_percent = positional.size() > 2 ? std::atof(positional[2]) : 3.0;

  concord::Db db;
  constexpr int kKeys = 15000;

  // The ZippyDB mix with a configurable scan share; the remaining weight is
  // split 78/13/6-proportionally across GET/PUT/DELETE.
  const double rest = (100.0 - scan_percent) / 97.0;
  concord::DiscreteMixtureDistribution workload({
      {"GET", 0.78 * rest, 600.0},
      {"PUT", 0.13 * rest, 2300.0},
      {"DELETE", 0.06 * rest, 2300.0},
      {"SCAN", scan_percent / 100.0, 500000.0},
  });
  // Clean service times for slowdown accounting (paper-measured values).
  concord::OpenLoopLoadgen loadgen(workload, {0.6, 2.3, 2.3, 500.0}, /*seed=*/7);

  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> deletes{0};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> scanned_pairs{0};

  const std::string trace_out = concord::telemetry::TraceOutPath(argc, argv);
  const std::string metrics_out = concord::telemetry::MetricsOutPath(argc, argv);
  const concord::RuntimeSelection selection = concord::SelectionFromArgsOrEnv(argc, argv);

  concord::ShardedRuntime::Options options;
  options.shard.worker_count = 2;
  options.shard.quantum_us = 50.0;
  options.shard.jbsq_depth = 2;
  options.shard.work_conserving_dispatcher = true;
  options.shard.policy = selection.policy;
  options.shard_count = selection.shard_count;
  options.placement = selection.placement;
  options.allowed_cpus = selection.cpus;
  if (!trace_out.empty()) {
    options.shard.trace_buffer_capacity = std::size_t{1} << 17;  // scheduling-trace capture on
  }

  concord::Runtime::Callbacks callbacks;
  callbacks.setup = [&db] {
    concord::PopulateDb(&db, kKeys, 64);
    std::printf("populated %d keys, %llu live\n", kKeys,
                static_cast<unsigned long long>(db.ScanCount()));
  };
  callbacks.handle_request = [&](const concord::RequestView& view) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", static_cast<int>(view.id % kKeys));
    switch (view.request_class) {
      case kGet: {
        std::string value;
        db.Get(concord::Slice(key), &value);
        gets.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kPut:
        db.Put(concord::Slice(key), concord::Slice("updated-value"));
        puts.fetch_add(1, std::memory_order_relaxed);
        break;
      case kDelete:
        // Delete then re-insert so the database keeps its size.
        db.Delete(concord::Slice(key));
        db.Put(concord::Slice(key), concord::Slice("reinserted"));
        deletes.fetch_add(1, std::memory_order_relaxed);
        break;
      case kScan: {
        scanned_pairs.fetch_add(db.ScanCount(), std::memory_order_relaxed);
        scans.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        break;
    }
  };
  // Multi-shard runs complete on every shard's dispatcher concurrently.
  callbacks.on_complete = selection.shard_count > 1 ? loadgen.LockedCompletionHook()
                                                    : loadgen.CompletionHook();

  concord::ShardedRuntime runtime(options, callbacks);
  runtime.Start();
  std::unique_ptr<concord::trace::MetricsSampler> sampler;
  if (!metrics_out.empty()) {
    concord::trace::MetricsSampler::Options sampler_options;
    sampler_options.window_ms = concord::telemetry::MetricsWindowMs(argc, argv);
    if (metrics_out != "-") {
      sampler_options.exposition_path = metrics_out + ".prom";
    }
    sampler = std::make_unique<concord::trace::MetricsSampler>(
        sampler_options, [&runtime] { return runtime.GetTelemetry(); });
    sampler->Start();
  }
  std::printf("serving %llu requests at %.1f kRps (%.1f%% scans, policy=%s, %d shard%s)...\n",
              static_cast<unsigned long long>(count), offered_krps, scan_percent,
              concord::PolicyKindName(selection.policy), selection.shard_count,
              selection.shard_count == 1 ? "" : "s");
  const concord::LoadgenReport report = loadgen.Run(&runtime, offered_krps, count);
  const concord::Runtime::Stats stats = runtime.GetStats();
  const concord::telemetry::TelemetrySnapshot telemetry = runtime.GetTelemetry();
  bool export_ok = true;
  if (sampler != nullptr) {
    sampler->Stop();  // flushes the final partial window
    export_ok = sampler->WriteSeries(metrics_out) && export_ok;
  }
  runtime.Shutdown();
  if (!trace_out.empty()) {
    // One capture per shard, each independently checkable by concord_trace;
    // single-shard keeps the plain path.
    for (int s = 0; s < runtime.shard_count(); ++s) {
      export_ok = concord::trace::WriteChromeTrace(
                      runtime.GetShardTrace(s),
                      concord::telemetry::ShardedOutPath(trace_out, s, runtime.shard_count())) &&
                  export_ok;
    }
  }

  std::printf("\nops: %llu GET, %llu PUT, %llu DELETE, %llu SCAN (%llu pairs walked)\n",
              static_cast<unsigned long long>(gets.load()),
              static_cast<unsigned long long>(puts.load()),
              static_cast<unsigned long long>(deletes.load()),
              static_cast<unsigned long long>(scans.load()),
              static_cast<unsigned long long>(scanned_pairs.load()));
  std::printf("slowdown: p50=%.1f p99=%.1f p99.9=%.1f\n", report.p50_slowdown,
              report.p99_slowdown, report.p999_slowdown);
  std::printf("preemptions=%llu (scans yielding to point queries), dispatcher_completed=%llu\n",
              static_cast<unsigned long long>(stats.preemptions),
              static_cast<unsigned long long>(stats.dispatcher_completed));
  if (telemetry.enabled) {
    const concord::telemetry::WorkerSnapshot totals = telemetry.Totals();
    std::printf("telemetry: probe_polls=%llu preempt_requested=%llu preempt_honored=%llu "
                "dispatcher_quanta=%llu\n",
                static_cast<unsigned long long>(totals.probe_polls),
                static_cast<unsigned long long>(totals.preemptions_requested),
                static_cast<unsigned long long>(totals.probe_yields),
                static_cast<unsigned long long>(telemetry.dispatcher.quanta_run));
  }
  export_ok = concord::telemetry::MaybeExportSnapshot(telemetry, argc, argv) && export_ok;
  return export_ok ? 0 : 1;
}
