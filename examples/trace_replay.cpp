// Trace replay: generate a ZippyDB-style trace, write it to disk, read it
// back and replay it through the simulated server — the workflow for
// evaluating Concord against recorded production traffic.
//
// Usage: trace_replay [trace_file] [count] [krps]

#include <fstream>
#include <iostream>

#include "src/common/cycles.h"
#include "src/model/server_model.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/workload/trace.h"
#include "src/workload/workload_factory.h"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/zippydb.trace";
  const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100000;
  const double krps = argc > 3 ? std::atof(argv[3]) : 400.0;

  // 1. Synthesize the trace (stand-in for recorded production traffic).
  const concord::WorkloadSpec spec = concord::MakeWorkload(concord::WorkloadId::kLevelDbZippyDb);
  concord::Rng rng(2024);
  concord::PoissonArrivals arrivals(concord::KrpsToInterarrivalNs(krps));
  concord::Trace trace = concord::GenerateTrace(*spec.distribution, arrivals, count, rng);
  {
    std::ofstream out(path);
    concord::WriteTrace(trace, out);
  }
  std::cout << "wrote " << trace.requests.size() << " requests ("
            << trace.DurationNs() / 1e6 << " ms of traffic) to " << path << "\n";

  // 2. Read it back (what a user with a real trace file would start from).
  concord::Trace loaded;
  {
    std::ifstream in(path);
    if (!concord::ReadTrace(in, &loaded)) {
      std::cerr << "failed to parse " << path << "\n";
      return 1;
    }
  }

  // 3. Replay through each system.
  const concord::CostModel costs = concord::DefaultCosts();
  concord::TablePrinter table(
      {"system", "p50_slowdown", "p99_slowdown", "p999_slowdown", "preemptions"});
  for (const concord::SystemConfig& config :
       {concord::MakePersephoneFcfs(14), concord::MakeShinjuku(14, concord::UsToNs(5.0)),
        concord::MakeConcord(14, concord::UsToNs(5.0))}) {
    concord::ServerModel model(config, costs, /*seed=*/3);
    const concord::RunResult result = model.RunTrace(loaded);
    table.AddRow({config.name,
                  concord::TablePrinter::Fixed(result.slowdown.QuantileSlowdown(0.50), 2),
                  concord::TablePrinter::Fixed(result.slowdown.QuantileSlowdown(0.99), 2),
                  concord::TablePrinter::Fixed(result.slowdown.P999Slowdown(), 2),
                  std::to_string(result.preemptions)});
  }
  std::cout << "replay at " << krps << " kRps, 14 workers, q=5us:\n";
  table.Print(std::cout);
  return 0;
}
