// concord_trace: offline scheduling-trace analyzer (docs/tracing.md).
//
// Ingests one or more Chrome trace-event files written via --trace-out= (or
// CONCORD_TRACE_OUT), recomputes per-request latency breakdowns (queue vs.
// service vs. preemption overhead), re-checks the runtime's scheduling
// invariants offline, and prints a summary table. With --check it exits
// nonzero on any invariant violation or unexplained record loss, which is
// how CI gates on trace integrity.
//
// Multiple TRACE_FILEs are the sharded-runtime case (one capture per shard,
// telemetry::ShardedOutPath naming): each file is an independent runtime and
// is checked independently; a merged totals line follows, and --check fails
// if any shard fails.
//
// Usage:
//   concord_trace [options] TRACE_FILE...
//     --check                        exit 1 on violations/unexplained drops
//     --anatomy                      per-class latency anatomy: mean stage
//                                    breakdown plus a p99/p99.9 tail "blame"
//                                    report naming the dominant stage
//     --grace-us=N                   work-conservation grace bound (default 20000)
//     --no-work-conservation         skip the work-conservation check
//     --metrics=FILE                 cross-check a --metrics-out= series:
//                                    summed window completions must match the
//                                    traces' total completed-request count
//                                    within 1%
//     --min-windows=N                with --metrics: require at least N windows
//
// Exit codes: 0 = analysis succeeded (with --check: every invariant and the
// anatomy stage-sum identity hold and every drop is accounted); 1 = at least
// one violation, unexplained drop, or metrics mismatch; 2 = usage error or
// unreadable/unrecognized input file.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/stats/histogram.h"
#include "src/stats/table.h"
#include "src/telemetry/json.h"
#include "src/trace/analyzer.h"

namespace {

using concord::Histogram;
using concord::TablePrinter;
using concord::telemetry::JsonValue;
using concord::trace::AnalyzerOptions;
using concord::trace::AnalyzerReport;
using concord::trace::RequestBreakdown;

struct CliOptions {
  std::vector<std::string> trace_paths;
  std::string metrics_path;
  AnalyzerOptions analyzer;
  bool check = false;
  bool anatomy = false;
  std::uint64_t min_windows = 0;
};

void PrintUsage() {
  std::cerr << "usage: concord_trace [--check] [--anatomy] [--grace-us=N]\n"
               "                     [--no-work-conservation] [--metrics=FILE]\n"
               "                     [--min-windows=N] TRACE_FILE...\n"
               "exit codes: 0 analysis ok (--check: invariants + anatomy identity hold,\n"
               "            drops accounted); 1 violations/unexplained drops/metrics\n"
               "            mismatch; 2 usage error or unreadable file\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      options->check = true;
    } else if (arg == "--anatomy") {
      options->anatomy = true;
    } else if (arg.rfind("--grace-us=", 0) == 0) {
      options->analyzer.grace_us = std::atof(arg.c_str() + std::strlen("--grace-us="));
    } else if (arg == "--no-work-conservation") {
      options->analyzer.check_work_conservation = false;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      options->metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg.rfind("--min-windows=", 0) == 0) {
      options->min_windows = static_cast<std::uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--min-windows=")));
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "concord_trace: unknown option " << arg << "\n";
      return false;
    } else {
      options->trace_paths.push_back(arg);
    }
  }
  if (options->trace_paths.empty()) {
    std::cerr << "concord_trace: no trace file given\n";
    return false;
  }
  return true;
}

void PrintBreakdownTable(const AnalyzerReport& report) {
  // Aggregate per request class: where did the microseconds go.
  struct ClassAgg {
    Histogram latency;
    double first_wait = 0.0;
    double inbox_wait = 0.0;
    double requeue_wait = 0.0;
    double service = 0.0;
    std::uint64_t preemptions = 0;
    std::uint64_t count = 0;
  };
  std::map<std::int32_t, ClassAgg> classes;
  for (const RequestBreakdown& b : report.breakdowns) {
    ClassAgg& agg = classes[b.request_class];
    agg.latency.Record(b.latency_us);
    agg.first_wait += b.first_wait_us;
    agg.inbox_wait += b.inbox_wait_us;
    agg.requeue_wait += b.requeue_wait_us;
    agg.service += b.service_us;
    agg.preemptions += static_cast<std::uint64_t>(b.preemptions);
    ++agg.count;
  }
  TablePrinter table({"class", "requests", "p50 lat (us)", "p99 lat (us)", "queue (us)",
                      "service (us)", "preempt ovh (us)", "preempts/req"});
  for (const auto& [request_class, agg] : classes) {
    const auto n = static_cast<double>(agg.count);
    table.AddRow({std::to_string(request_class), std::to_string(agg.count),
                  TablePrinter::Fixed(agg.latency.Quantile(0.50), 2),
                  TablePrinter::Fixed(agg.latency.Quantile(0.99), 2),
                  TablePrinter::Fixed((agg.first_wait + agg.inbox_wait) / n, 2),
                  TablePrinter::Fixed(agg.service / n, 2),
                  TablePrinter::Fixed(agg.requeue_wait / n, 2),
                  TablePrinter::Fixed(static_cast<double>(agg.preemptions) / n, 2)});
  }
  if (table.RowCount() > 0) {
    std::cout << "\nPer-class latency breakdown (queue = ingress+central+inbox wait; preempt\n"
                 "ovh = time between a preemption and the resumed segment):\n";
    table.Print(std::cout);
  }
}

// The --anatomy report: per-class mean stage breakdown (the exact TSC stage
// vectors, converted to microseconds for display) plus a tail "blame" table —
// for the requests at or above each class's p99 / p99.9 latency, which stage
// holds the largest share of their summed latency. The stage vectors sum to
// the end-to-end latency exactly in TSC units (--check enforces it), so the
// shares partition the tail's microseconds with nothing unattributed.
void PrintAnatomyReport(const AnalyzerReport& report) {
  using concord::trace::kTraceStages;
  using concord::trace::TraceStageName;
  const double ghz = report.tsc_ghz > 0.0 ? report.tsc_ghz : 1.0;
  const auto us = [ghz](std::uint64_t ticks) {
    return static_cast<double>(ticks) / (ghz * 1000.0);
  };

  std::map<std::int32_t, std::vector<const RequestBreakdown*>> classes;
  for (const RequestBreakdown& b : report.breakdowns) {
    classes[b.request_class].push_back(&b);
  }
  if (classes.empty()) {
    std::cout << "\nAnatomy: no complete requests to attribute\n";
    return;
  }

  TablePrinter means({"class", "requests", "ingress (us)", "queue (us)", "inbox (us)",
                      "service (us)", "requeue (us)", "latency (us)"});
  for (const auto& [request_class, requests] : classes) {
    std::uint64_t stage_sum[kTraceStages] = {0, 0, 0, 0, 0};
    std::uint64_t latency_sum = 0;
    for (const RequestBreakdown* b : requests) {
      for (int stage = 0; stage < kTraceStages; ++stage) {
        stage_sum[static_cast<std::size_t>(stage)] +=
            b->stage_tsc[static_cast<std::size_t>(stage)];
      }
      latency_sum += b->latency_tsc;
    }
    const auto n = static_cast<double>(requests.size());
    std::vector<std::string> row = {std::to_string(request_class),
                                    std::to_string(requests.size())};
    for (int stage = 0; stage < kTraceStages; ++stage) {
      row.push_back(TablePrinter::Fixed(us(stage_sum[static_cast<std::size_t>(stage)]) / n, 2));
    }
    row.push_back(TablePrinter::Fixed(us(latency_sum) / n, 2));
    means.AddRow(row);
  }
  std::cout << "\nLatency anatomy, mean per stage (stages partition [arrival, finish]\n"
               "exactly; drain is live-telemetry-only and absent from traces):\n";
  means.Print(std::cout);

  TablePrinter blame({"class", "tail", "requests", ">= lat (us)", "dominant stage", "share",
                      "ingress", "queue", "inbox", "service", "requeue"});
  for (auto& [request_class, requests] : classes) {
    std::sort(requests.begin(), requests.end(),
              [](const RequestBreakdown* a, const RequestBreakdown* b) {
                return a->latency_tsc < b->latency_tsc;
              });
    const struct {
      const char* label;
      double quantile;
    } tails[] = {{"p99", 0.99}, {"p99.9", 0.999}};
    for (const auto& tail : tails) {
      // Ceil-rank cut: the tail holds every request at or above the quantile
      // latency, never fewer than one.
      std::size_t first = static_cast<std::size_t>(tail.quantile *
                                                   static_cast<double>(requests.size()));
      if (first >= requests.size()) {
        first = requests.size() - 1;
      }
      std::uint64_t stage_sum[kTraceStages] = {0, 0, 0, 0, 0};
      std::uint64_t latency_sum = 0;
      for (std::size_t i = first; i < requests.size(); ++i) {
        for (int stage = 0; stage < kTraceStages; ++stage) {
          stage_sum[static_cast<std::size_t>(stage)] +=
              requests[i]->stage_tsc[static_cast<std::size_t>(stage)];
        }
        latency_sum += requests[i]->latency_tsc;
      }
      int dominant = 0;
      for (int stage = 1; stage < kTraceStages; ++stage) {
        if (stage_sum[static_cast<std::size_t>(stage)] >
            stage_sum[static_cast<std::size_t>(dominant)]) {
          dominant = stage;
        }
      }
      const auto share = [&](int stage) {
        return latency_sum > 0
                   ? static_cast<double>(stage_sum[static_cast<std::size_t>(stage)]) /
                         static_cast<double>(latency_sum)
                   : 0.0;
      };
      std::vector<std::string> row = {
          std::to_string(request_class),
          tail.label,
          std::to_string(requests.size() - first),
          TablePrinter::Fixed(us(requests[first]->latency_tsc), 2),
          TraceStageName(dominant),
          TablePrinter::Percent(share(dominant), 1)};
      for (int stage = 0; stage < kTraceStages; ++stage) {
        row.push_back(TablePrinter::Percent(share(stage), 1));
      }
      blame.AddRow(row);
    }
  }
  std::cout << "\nTail blame (share of the tail requests' summed latency per stage):\n";
  blame.Print(std::cout);
}

void PrintWorkerTable(const AnalyzerReport& report) {
  TablePrinter table({"track", "run segments"});
  for (std::size_t w = 0; w < report.segments_per_worker.size(); ++w) {
    table.AddRow({"worker " + std::to_string(w), std::to_string(report.segments_per_worker[w])});
  }
  table.AddRow({"dispatcher", std::to_string(report.dispatcher_segments)});
  std::cout << "\nRun segments per track:\n";
  table.Print(std::cout);
}

// Cross-checks a --metrics-out= series against the trace(s): the summed
// window completion counts must equal the traces' total completed-request
// population to within 1% (both sides count every completion exactly; the
// tolerance only absorbs completions that straddle the capture edges). With
// sharded traces the sampler read merged telemetry, so the comparison is
// against the sum over shards.
bool CheckMetrics(const CliOptions& options, std::uint64_t completed_total) {
  std::ifstream in(options.metrics_path, std::ios::binary);
  if (!in) {
    std::cerr << "concord_trace: cannot open metrics file " << options.metrics_path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  JsonValue root;
  if (!JsonValue::Parse(text.str(), &root) || !root.is_object()) {
    std::cerr << "concord_trace: metrics file is not valid JSON\n";
    return false;
  }
  const JsonValue* schema = root.Get("schema");
  if (schema == nullptr || schema->AsString() != "concord.metrics.v1") {
    std::cerr << "concord_trace: unrecognized metrics schema\n";
    return false;
  }
  const JsonValue* windows = root.Get("windows");
  if (windows == nullptr || !windows->is_array()) {
    std::cerr << "concord_trace: metrics file has no windows array\n";
    return false;
  }
  std::uint64_t summed = 0;
  for (const JsonValue& window : windows->AsArray()) {
    summed += window.GetUint("completed");
  }
  const std::uint64_t window_count = windows->AsArray().size();
  const std::uint64_t dropped = root.GetUint("dropped_windows");
  std::cout << "\nMetrics series: " << window_count << " window(s), " << dropped
            << " dropped, summed completions " << summed << "\n";
  bool ok = true;
  if (window_count < options.min_windows) {
    std::cerr << "concord_trace: expected at least " << options.min_windows << " windows, got "
              << window_count << "\n";
    ok = false;
  }
  if (dropped > 0) {
    std::cerr << "concord_trace: metrics series dropped " << dropped
              << " window(s); completion sum is not comparable\n";
    ok = false;
  }
  const auto completed = static_cast<double>(completed_total);
  if (completed > 0.0) {
    const double relative =
        std::abs(static_cast<double>(summed) - completed) / completed;
    std::cout << "Trace completed requests " << completed_total
              << "; relative difference " << TablePrinter::Percent(relative, 3) << "\n";
    if (relative > 0.01) {
      std::cerr << "concord_trace: metrics/trace completion mismatch exceeds 1%\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  bool ok = true;
  std::uint64_t total_records = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t total_complete = 0;
  std::uint64_t total_truncated = 0;
  std::uint64_t total_violations = 0;
  std::uint64_t total_unexplained = 0;
  const bool sharded = options.trace_paths.size() > 1;
  for (std::size_t shard = 0; shard < options.trace_paths.size(); ++shard) {
    const std::string& trace_path = options.trace_paths[shard];
    const AnalyzerReport report =
        concord::trace::AnalyzeChromeTraceFile(trace_path, options.analyzer);
    if (!report.error.empty()) {
      std::cerr << "concord_trace: " << trace_path << ": " << report.error << "\n";
      return 2;
    }

    std::cout << "Trace: " << trace_path;
    if (sharded) {
      std::cout << " (shard " << shard << " of " << options.trace_paths.size() << ")";
    }
    std::cout << "\n"
              << "  records " << report.record_count << ", workers " << report.worker_count
              << ", JBSQ k=" << report.jbsq_depth << ", quantum "
              << TablePrinter::Fixed(report.quantum_us, 1) << " us, tsc "
              << TablePrinter::Fixed(report.tsc_ghz, 3) << " GHz"
              << (report.policy.empty() ? std::string() : ", policy " + report.policy) << "\n"
              << "  requests: " << report.requests_total << " total, " << report.requests_complete
              << " complete, " << report.requests_truncated << " truncated\n"
              << "  preempt signals observed: " << report.preempt_signals << "\n"
              << "  drops: declared ring=" << report.declared_ring_dropped
              << " buffer=" << report.declared_buffer_dropped
              << ", observed sequence gaps=" << report.observed_sequence_gaps
              << ", unexplained=" << report.unexplained_drops << "\n";

    PrintWorkerTable(report);
    PrintBreakdownTable(report);
    if (options.anatomy) {
      PrintAnatomyReport(report);
    }

    if (!report.violations.empty()) {
      std::cout << "\nInvariant violations (" << report.violations.size() << "):\n";
      for (const std::string& violation : report.violations) {
        std::cout << "  - " << violation << "\n";
      }
      ok = false;
    } else {
      std::cout << "\nInvariants: monotone timestamps, JBSQ occupancy <= k, dispatcher-pinned\n"
                   "completion, work conservation (grace "
                << TablePrinter::Fixed(options.analyzer.grace_us, 0) << " us): all hold\n";
      if (report.edf_dispatches_checked > 0) {
        std::cout << "EDF dispatch ordering: " << report.edf_dispatches_checked
                  << " deadline-carrying dispatch(es) in deadline order\n";
      }
    }
    if (report.unexplained_drops > 0) {
      ok = false;
    }

    total_records += report.record_count;
    total_requests += report.requests_total;
    total_complete += report.requests_complete;
    total_truncated += report.requests_truncated;
    total_violations += report.violations.size();
    total_unexplained += report.unexplained_drops;
    if (shard + 1 < options.trace_paths.size()) {
      std::cout << "\n";
    }
  }

  if (sharded) {
    std::cout << "\nMerged over " << options.trace_paths.size() << " shards: " << total_records
              << " records, " << total_requests << " requests (" << total_complete
              << " complete, " << total_truncated << " truncated), " << total_violations
              << " violation(s), " << total_unexplained << " unexplained drop(s)\n";
  }

  if (!options.metrics_path.empty()) {
    ok = CheckMetrics(options, total_complete) && ok;
  }

  if (options.check) {
    if (!ok) {
      std::cerr << "concord_trace: --check FAILED\n";
      return 1;
    }
    std::cout << "\n--check passed: all invariants hold, every drop accounted\n";
  }
  return options.check ? 0 : (ok ? 0 : 1);
}
