// atomics_lint: command-line front end for the atomics lint
// (src/analysis/atomics_lint.h). Lints all named files/directories as ONE
// cross-file unit — acquire/release pairing is resolved across every file on
// the command line, so pass the whole subsystem, not one file at a time.
//
// Exit codes: 0 clean, 1 violations found, 2 usage error.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/atomics_lint.h"

namespace {

void PrintUsage() {
  std::cerr << "usage: atomics_lint [--rationale-window=N] <file-or-dir>...\n"
            << "\n"
            << "Lints atomics usage: defaulted memory orders, undocumented seq_cst,\n"
            << "acquire/release edges with no matching other half (cross-file), and\n"
            << "non-atomic fields in *Shared / `concord-atomics: shared-struct` structs.\n"
            << "Suppressions: concord-atomics: allow-default | allow-seq-cst |\n"
            << "allow-unpaired | allow-plain-field.\n";
}

}  // namespace

int main(int argc, char** argv) {
  concord::AtomicsLintConfig config;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string window_flag = "--rationale-window=";
    if (arg.rfind(window_flag, 0) == 0) {
      config.rationale_window_lines = std::atoi(arg.c_str() + window_flag.size());
      if (config.rationale_window_lines <= 0) {
        std::cerr << "atomics_lint: bad value in " << arg << "\n";
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "atomics_lint: unknown flag " << arg << "\n";
      PrintUsage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    PrintUsage();
    return 2;
  }

  const std::vector<concord::AtomicsLintViolation> violations =
      concord::LintAtomicsTree(roots, config);
  for (const concord::AtomicsLintViolation& violation : violations) {
    std::cout << concord::AtomicsViolationToString(violation) << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " atomics lint violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "atomics lint clean\n";
  return 0;
}
