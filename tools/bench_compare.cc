// bench_compare: diff a fresh `micro_runtime --json-out=` summary against a
// committed reference (BENCH_micro_runtime.json) with a tolerance band.
//
// CI's perf-smoke job runs on noisy shared runners, so the default band is
// deliberately wide: it exists to catch order-of-magnitude regressions (a
// lock on the hot path, an accidental O(n) scan per dispatch), not single-
// digit-percent drift — the committed baseline block tracks that by hand.
//
// Usage:
//   bench_compare [options] FRESH.json REFERENCE.json
//     --min-throughput-ratio=R   fail when fresh/reference median throughput
//                                falls below R (default 0.5)
//     --min-2shard-ratio=R       fail when the fresh 2-shard scaling ratio
//                                (pipelined_throughput_2shard.vs_single_shard)
//                                falls below R x the reference's (default 0.5;
//                                skipped when either artifact lacks the block)
//     --max-p99-ratio=R          fail when fresh p99 slowdown exceeds R x the
//                                reference (default 4: wide enough for shared-
//                                runner noise, tight enough to catch a tail
//                                collapse; 0 disables the gate, report only)
//
// Exit codes: 0 = within the band; 1 = outside the band; 2 = usage error or
// unreadable/mismatched input.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/stats/table.h"
#include "src/telemetry/json.h"

namespace {

using concord::TablePrinter;
using concord::telemetry::JsonValue;

bool LoadJson(const std::string& path, JsonValue* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_compare: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!JsonValue::Parse(text.str(), out) || !out->is_object()) {
    std::cerr << "bench_compare: " << path << " is not valid JSON\n";
    return false;
  }
  return true;
}

double NestedDouble(const JsonValue& root, const std::string& section, const std::string& key) {
  const JsonValue* object = root.Get(section);
  return object != nullptr && object->is_object() ? object->GetDouble(key) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  double min_throughput_ratio = 0.5;
  double min_2shard_ratio = 0.5;
  double max_p99_ratio = 4.0;  // 0: report only
  std::string fresh_path;
  std::string reference_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-throughput-ratio=", 0) == 0) {
      min_throughput_ratio = std::atof(arg.c_str() + std::strlen("--min-throughput-ratio="));
    } else if (arg.rfind("--max-p99-ratio=", 0) == 0) {
      max_p99_ratio = std::atof(arg.c_str() + std::strlen("--max-p99-ratio="));
    } else if (arg.rfind("--min-2shard-ratio=", 0) == 0) {
      min_2shard_ratio = std::atof(arg.c_str() + std::strlen("--min-2shard-ratio="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: bench_compare [--min-throughput-ratio=R] [--min-2shard-ratio=R]\n"
                   "                     [--max-p99-ratio=R] FRESH.json REFERENCE.json\n"
                   "exit codes: 0 within band; 1 outside band; 2 usage/input error\n";
      return 2;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      reference_path = arg;
    }
  }
  if (fresh_path.empty() || reference_path.empty()) {
    std::cerr << "bench_compare: need FRESH.json and REFERENCE.json\n";
    return 2;
  }

  JsonValue fresh;
  JsonValue reference;
  if (!LoadJson(fresh_path, &fresh) || !LoadJson(reference_path, &reference)) {
    return 2;
  }
  const JsonValue* fresh_name = fresh.Get("benchmark");
  const JsonValue* reference_name = reference.Get("benchmark");
  if (fresh_name == nullptr || reference_name == nullptr ||
      fresh_name->AsString() != reference_name->AsString()) {
    std::cerr << "bench_compare: benchmark names differ (or are missing); not comparable\n";
    return 2;
  }

  const double fresh_tput = NestedDouble(fresh, "pipelined_throughput", "median_items_per_sec");
  const double ref_tput = NestedDouble(reference, "pipelined_throughput", "median_items_per_sec");
  const double fresh_p99 = NestedDouble(fresh, "slowdown", "p99");
  const double ref_p99 = NestedDouble(reference, "slowdown", "p99");
  if (fresh_tput <= 0.0 || ref_tput <= 0.0) {
    std::cerr << "bench_compare: missing pipelined_throughput.median_items_per_sec\n";
    return 2;
  }

  bool ok = true;
  const double tput_ratio = fresh_tput / ref_tput;
  const double p99_ratio = ref_p99 > 0.0 ? fresh_p99 / ref_p99 : 0.0;

  TablePrinter table({"metric", "fresh", "reference", "ratio", "band", "verdict"});
  const bool tput_ok = tput_ratio >= min_throughput_ratio;
  table.AddRow({"throughput (items/s)", TablePrinter::Fixed(fresh_tput, 0),
                TablePrinter::Fixed(ref_tput, 0), TablePrinter::Fixed(tput_ratio, 3),
                ">= " + TablePrinter::Fixed(min_throughput_ratio, 2),
                tput_ok ? "ok" : "FAIL"});
  ok = ok && tput_ok;
  // Inter-shard scaling gate: a locality or ingress regression that only
  // hurts the multi-shard path shows up here while the single-shard gate
  // stays green. Compared ratio-to-ratio so the gate is host-relative.
  const double fresh_2shard =
      NestedDouble(fresh, "pipelined_throughput_2shard", "vs_single_shard");
  const double ref_2shard =
      NestedDouble(reference, "pipelined_throughput_2shard", "vs_single_shard");
  if (fresh_2shard > 0.0 && ref_2shard > 0.0) {
    const bool gated = min_2shard_ratio > 0.0;
    const double scaling_ratio = fresh_2shard / ref_2shard;
    const bool scaling_ok = !gated || scaling_ratio >= min_2shard_ratio;
    table.AddRow({"2-shard vs 1-shard", TablePrinter::Fixed(fresh_2shard, 3),
                  TablePrinter::Fixed(ref_2shard, 3), TablePrinter::Fixed(scaling_ratio, 3),
                  gated ? ">= " + TablePrinter::Fixed(min_2shard_ratio, 2) : "(report only)",
                  gated ? (scaling_ok ? "ok" : "FAIL") : "-"});
    ok = ok && scaling_ok;
  }
  if (ref_p99 > 0.0) {
    const bool p99_gated = max_p99_ratio > 0.0;
    const bool p99_ok = !p99_gated || p99_ratio <= max_p99_ratio;
    table.AddRow({"p99 slowdown", TablePrinter::Fixed(fresh_p99, 1),
                  TablePrinter::Fixed(ref_p99, 1), TablePrinter::Fixed(p99_ratio, 3),
                  p99_gated ? "<= " + TablePrinter::Fixed(max_p99_ratio, 2) : "(report only)",
                  p99_gated ? (p99_ok ? "ok" : "FAIL") : "-"});
    ok = ok && p99_ok;
  }
  std::cout << "Benchmark: " << fresh_name->AsString() << "\n";
  table.Print(std::cout);

  if (!ok) {
    std::cerr << "bench_compare: outside the tolerance band\n";
    return 1;
  }
  std::cout << "bench_compare: within the tolerance band\n";
  return 0;
}
