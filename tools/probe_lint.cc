// probe-lint: source-level probe-coverage lint for handler code.
//
// Scans the given files or directories and reports loops and long functions
// that execute no CONCORD_PROBE(), i.e. code the dispatcher cannot preempt
// within a quantum. Exit status 0 when clean, 1 when violations were found.
//
// Usage:
//   probe_lint [--short_body_lines=6] [--long_function_lines=40]
//              [--everything] PATH...
//
//   --everything  lint all functions in all files, not just instrumented
//                 files and handle_request lambdas (advisory sweep mode)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/source_lint.h"

int main(int argc, char** argv) {
  concord::LintConfig config;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--short_body_lines=", 19) == 0) {
      config.short_body_lines = std::atoi(arg + 19);
    } else if (std::strncmp(arg, "--long_function_lines=", 22) == 0) {
      config.long_function_lines = std::atoi(arg + 22);
    } else if (std::strcmp(arg, "--everything") == 0) {
      config.lint_everything = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: probe_lint [flags] PATH...\n");
    return 2;
  }

  std::size_t total = 0;
  for (const std::string& path : paths) {
    for (const concord::LintViolation& violation : concord::LintTree(path, config)) {
      std::printf("%s\n", concord::ViolationToString(violation).c_str());
      ++total;
    }
  }
  if (total > 0) {
    std::printf("%zu probe-coverage violation%s\n", total, total == 1 ? "" : "s");
    return 1;
  }
  std::printf("probe lint clean\n");
  return 0;
}
