// concord-verify: static probe-gap verification over the canned IR programs.
//
// Computes the provable worst-case probe-to-probe interval for every program
// in src/compiler/programs.cc (the 24 Table 1 stand-ins) and checks it
// against the target scheduling quantum. Exit status 0 means every program
// verifies; 1 means at least one has an interval the placement rules cannot
// bound below the quantum.
//
// Usage:
//   concord_verify [--quantum_us=5.0] [--opaque_slack=2.0] [--strict]
//                  [--json] [--program=NAME]
//
//   --quantum_us    target quantum for instrumented intervals
//   --opaque_slack  multiplier on the quantum tolerated for un-instrumented
//                   callees (probe-bracketed, unavoidable at any placement)
//   --strict        shorthand for --opaque_slack=1.0
//   --json          emit one machine-readable JSON verdict per line
//   --program       verify only the named program

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/probe_gap_verifier.h"
#include "src/compiler/programs.h"

namespace {

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::atof(arg + len + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  concord::GapVerifierConfig config;
  bool json = false;
  std::string only_program;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseDoubleFlag(arg, "--quantum_us", &config.quantum_us) ||
        ParseDoubleFlag(arg, "--opaque_slack", &config.opaque_slack)) {
      continue;
    }
    if (std::strcmp(arg, "--strict") == 0) {
      config.opaque_slack = 1.0;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--program=", 10) == 0) {
      only_program = arg + 10;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (config.quantum_us <= 0.0 || config.opaque_slack < 1.0) {
    std::fprintf(stderr, "invalid flags: quantum_us must be > 0, opaque_slack >= 1\n");
    return 2;
  }

  int failures = 0;
  int verified = 0;
  for (const concord::Table1Program& program : concord::Table1Programs()) {
    if (!only_program.empty() && program.name != only_program) {
      continue;
    }
    const concord::ProgramGapReport report = concord::VerifyProgram(program.ir, config);
    ++verified;
    failures += report.pass ? 0 : 1;
    if (json) {
      std::printf("%s\n", report.ToJson().c_str());
      continue;
    }
    std::printf("%-20s %-6s worst instrumented gap %9.1f ns (quantum %8.1f ns), "
                "worst opaque gap %9.1f ns (bound %8.1f ns)\n",
                report.program.c_str(), report.pass ? "PASS" : "FAIL",
                report.worst_instrumented_gap_ns, report.quantum_ns, report.worst_opaque_gap_ns,
                report.opaque_bound_ns);
    if (!report.pass) {
      for (const concord::FunctionGapReport& fn : report.functions) {
        if (fn.pass) {
          continue;
        }
        std::printf("  %s: instrumented %.1f ns via %s\n", fn.function.c_str(),
                    fn.worst_instrumented_gap_ns, fn.instrumented_gap_path.c_str());
        if (!fn.opaque_gap_path.empty()) {
          std::printf("  %s: opaque %.1f ns via %s\n", fn.function.c_str(),
                      fn.worst_opaque_gap_ns, fn.opaque_gap_path.c_str());
        }
      }
    }
  }
  if (verified == 0) {
    std::fprintf(stderr, "no program matched %s\n", only_program.c_str());
    return 2;
  }
  if (!json) {
    std::printf("%d/%d programs verified\n", verified - failures, verified);
  }
  return failures == 0 ? 0 : 1;
}
