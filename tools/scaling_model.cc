// scaling_model: predict multi-core throughput and p99-slowdown scaling from
// a single-host benchmark artifact plus the paper-calibrated server model.
//
// The committed BENCH_micro_runtime.json records what one host measured:
// single-shard and 2-shard pipelined throughput, usually on a machine with
// far fewer cores than the paper's testbed. This tool turns that into a
// calibrated prediction of what 2/4/8/16 cores would do, in two regimes:
//
//   oversubscribed (cores < runtime threads) — throughput is CPU-bound:
//     rate(k shards, H cores) = H / (C * (1 + beta * excess_threads))
//     where C is the per-request CPU work and beta the multiplexing penalty
//     per thread beyond the core count (context switches, cold caches, lost
//     spin-poll cycles). C and beta are calibrated exactly from the two
//     committed live points (1 shard and 2 shards), so by construction the
//     model reproduces the measured 1-/2-shard numbers on the recording
//     host; the committed artifact is the regression anchor.
//
//   seated (cores >= threads) — throughput is pipeline-bound at the slowest
//     serial stage of the model's cost accounting (networker per-packet work
//     vs dispatcher per-dispatch work, src/model/costs.h): the ~3.1 MRps
//     per-shard ceiling of Fig. 8, scaling linearly with shard count until
//     the submitter becomes the bottleneck.
//
// The p99-slowdown curve per core count comes from the discrete-event server
// model (src/model over src/sim): each seated shard runs the bench's bimodal
// 90% 5us / 10% 100us mix at 50/70/90% of its modeled capacity.
//
// Usage:
//   scaling_model [--bench-json=BENCH_micro_runtime.json]
//                 [--cores=1,2,4,8,16] [--workers-per-shard=2]
//                 [--json-out=PATH] [--check]
//
// --check exits 1 unless the calibrated model reproduces the artifact's
// measured 1- and 2-shard throughput within 20% (the tolerance the scaling
// claims are made at); 2 on unreadable input.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/cycles.h"
#include "src/model/costs.h"
#include "src/model/experiment.h"
#include "src/model/systems.h"
#include "src/stats/table.h"
#include "src/telemetry/json.h"
#include "src/workload/distribution.h"

namespace {

using concord::CostModel;
using concord::ExperimentParams;
using concord::TablePrinter;
using concord::UsToNs;
using concord::telemetry::JsonValue;

struct BenchArtifact {
  double single_items_per_sec = 0.0;
  double two_shard_items_per_sec = 0.0;  // 0 when the artifact has no 2-shard block
  int host_cpus = 1;                     // cores on the recording host
};

bool LoadArtifact(const std::string& path, BenchArtifact* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "scaling_model: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  JsonValue root;
  if (!JsonValue::Parse(text.str(), &root) || !root.is_object()) {
    std::cerr << "scaling_model: " << path << " is not valid JSON\n";
    return false;
  }
  const JsonValue* throughput = root.Get("pipelined_throughput");
  if (throughput == nullptr || !throughput->is_object()) {
    std::cerr << "scaling_model: " << path << " has no pipelined_throughput block\n";
    return false;
  }
  out->single_items_per_sec = throughput->GetDouble("median_items_per_sec");
  if (const JsonValue* two = root.Get("pipelined_throughput_2shard");
      two != nullptr && two->is_object()) {
    out->two_shard_items_per_sec = two->GetDouble("median_items_per_sec");
  }
  out->host_cpus = std::max(1, static_cast<int>(root.GetDouble("host_cpus")));
  return out->single_items_per_sec > 0.0;
}

// Threads the pipelined-throughput bench actually runs with k shards: one
// dispatcher + W workers per shard, plus the single submitting bench thread.
int ThreadCount(int shards, int workers_per_shard) {
  return shards * (1 + workers_per_shard) + 1;
}

// The calibrated oversubscription model (see file comment).
struct OversubModel {
  double work_ns = 0.0;  // C: per-request CPU work
  double beta = 0.0;     // multiplexing penalty per excess thread
  bool from_two_points = false;

  double ItemsPerSec(int shards, int cores, int workers_per_shard) const {
    const int excess = std::max(0, ThreadCount(shards, workers_per_shard) - cores);
    const double ns_per_op = work_ns * (1.0 + beta * excess) / cores;
    return ns_per_op > 0.0 ? 1.0e9 / ns_per_op : 0.0;
  }
};

OversubModel Calibrate(const BenchArtifact& artifact, int workers_per_shard) {
  OversubModel model;
  const double ns1 = 1.0e9 / artifact.single_items_per_sec;
  const int cores = artifact.host_cpus;
  const int excess1 = std::max(0, ThreadCount(1, workers_per_shard) - cores);
  const int excess2 = std::max(0, ThreadCount(2, workers_per_shard) - cores);
  model.beta = 0.15;  // fallback: modest penalty when only one point exists
  if (artifact.two_shard_items_per_sec > 0.0 && excess2 > excess1) {
    // Two measured points, two unknowns: solve
    //   ns_k = C * (1 + beta * excess_k) / cores  for k in {1 shard, 2 shards}.
    const double ratio = artifact.single_items_per_sec / artifact.two_shard_items_per_sec;
    const double denominator = excess2 - ratio * excess1;
    if (denominator > 0.0 && ratio > 1.0) {
      model.beta = std::clamp((ratio - 1.0) / denominator, 0.0, 5.0);
      model.from_two_points = true;
    }
  }
  model.work_ns = ns1 * cores / (1.0 + model.beta * excess1);
  return model;
}

// Per-shard pipeline ceiling with every thread on its own core: the slowest
// serial stage of the model's cost accounting. For the no-op bench the
// handler contributes nothing, so the bound is the networker's per-packet
// work vs the dispatcher's per-dispatch work (JBSQ push + arrival + select).
double SeatedShardCapacityPerSec(const CostModel& costs) {
  const double dispatcher_ns =
      costs.dispatch_arrival_ns + costs.dispatch_jbsq_push_ns + costs.jbsq_select_ns;
  const double stage_ns = std::max(costs.networker_ns, dispatcher_ns);
  return stage_ns > 0.0 ? 1.0e9 / stage_ns : 0.0;
}

// Shards that can be fully seated on `cores` CPUs, one core left for the
// submitter. At least one shard always runs (oversubscribed if needed).
int SeatedShards(int cores, int workers_per_shard) {
  return std::max(1, (cores - 1) / (1 + workers_per_shard));
}

struct LoadPointPrediction {
  double utilization = 0.0;
  double offered_krps = 0.0;
  double p99_slowdown = 0.0;
};

// p99 slowdown of one seated shard at `utilization` of its modeled capacity,
// on the bench's bimodal 90% 5us / 10% 100us slowdown mix.
LoadPointPrediction PredictShardTail(const CostModel& costs, int workers_per_shard,
                                     double capacity_per_sec, double utilization) {
  LoadPointPrediction prediction;
  prediction.utilization = utilization;
  // The mix's mean service demand (14.5us on W workers) caps the per-shard
  // rate well below the no-op pipeline ceiling; respect whichever is lower.
  const double mean_service_us = 0.9 * 5.0 + 0.1 * 100.0;
  const double service_cap_krps = 1000.0 / mean_service_us * workers_per_shard;
  const double cap_krps = std::min(capacity_per_sec / 1000.0, service_cap_krps);
  prediction.offered_krps = utilization * cap_krps;
  const std::unique_ptr<concord::DiscreteMixtureDistribution> mix =
      concord::MakeBimodal(90.0, 5.0, 10.0, 100.0);
  ExperimentParams params;
  params.request_count = 40000;
  params.seed = 42;
  const concord::LoadPoint point =
      concord::RunLoadPoint(concord::MakeConcord(workers_per_shard, UsToNs(20.0)), costs, *mix,
                            prediction.offered_krps, params);
  prediction.p99_slowdown = point.p99_slowdown;
  return prediction;
}

std::vector<int> ParseCores(const std::string& spec) {
  std::vector<int> cores;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const int value = std::atoi(token.c_str());
    if (value >= 1) {
      cores.push_back(value);
    }
  }
  if (cores.empty()) {
    cores = {1, 2, 4, 8, 16};
  }
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_json = "BENCH_micro_runtime.json";
  std::string cores_spec;
  std::string json_out;
  int workers_per_shard = 2;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(std::strlen("--bench-json="));
    } else if (arg.rfind("--cores=", 0) == 0) {
      cores_spec = arg.substr(std::strlen("--cores="));
    } else if (arg.rfind("--workers-per-shard=", 0) == 0) {
      workers_per_shard = std::max(1, std::atoi(arg.c_str() + std::strlen("--workers-per-shard=")));
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json-out="));
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: scaling_model [--bench-json=FILE] [--cores=1,2,4,8,16]\n"
                   "                     [--workers-per-shard=N] [--json-out=FILE] [--check]\n";
      return 2;
    }
  }

  BenchArtifact artifact;
  if (!LoadArtifact(bench_json, &artifact)) {
    return 2;
  }
  const OversubModel oversub = Calibrate(artifact, workers_per_shard);
  const CostModel costs = concord::DefaultCosts();
  const double seated_capacity = SeatedShardCapacityPerSec(costs);

  std::cout << "calibration from " << bench_json << " (host_cpus=" << artifact.host_cpus
            << "): per-request work " << oversub.work_ns << " ns, oversubscription beta "
            << oversub.beta << (oversub.from_two_points ? " (solved from 1+2 shard points)\n"
                                                        : " (default; artifact had one point)\n");

  // --- validation: the model must reproduce the artifact's live numbers ---
  constexpr double kTolerance = 0.20;
  bool within_tolerance = true;
  {
    TablePrinter table({"live point", "measured items/s", "modeled items/s", "rel err"});
    const double modeled1 = std::min(
        oversub.ItemsPerSec(1, artifact.host_cpus, workers_per_shard), seated_capacity);
    const double err1 = std::abs(modeled1 - artifact.single_items_per_sec) /
                        artifact.single_items_per_sec;
    within_tolerance = within_tolerance && err1 <= kTolerance;
    table.AddRow({"1 shard", TablePrinter::Fixed(artifact.single_items_per_sec, 0),
                  TablePrinter::Fixed(modeled1, 0), TablePrinter::Fixed(err1, 3)});
    if (artifact.two_shard_items_per_sec > 0.0) {
      const double modeled2 = std::min(
          oversub.ItemsPerSec(2, artifact.host_cpus, workers_per_shard), 2.0 * seated_capacity);
      const double err2 = std::abs(modeled2 - artifact.two_shard_items_per_sec) /
                          artifact.two_shard_items_per_sec;
      within_tolerance = within_tolerance && err2 <= kTolerance;
      table.AddRow({"2 shards", TablePrinter::Fixed(artifact.two_shard_items_per_sec, 0),
                    TablePrinter::Fixed(modeled2, 0), TablePrinter::Fixed(err2, 3)});
    }
    table.Print(std::cout);
  }

  // --- predictions ---
  const std::vector<int> core_counts = ParseCores(cores_spec);
  struct CorePrediction {
    int cores = 0;
    int shards = 0;
    bool oversubscribed = false;
    double items_per_sec = 0.0;
    std::vector<LoadPointPrediction> tail;
  };
  std::vector<CorePrediction> predictions;
  for (const int cores : core_counts) {
    CorePrediction prediction;
    prediction.cores = cores;
    prediction.shards = SeatedShards(cores, workers_per_shard);
    prediction.oversubscribed =
        ThreadCount(prediction.shards, workers_per_shard) > cores;
    const double cpu_bound =
        oversub.ItemsPerSec(prediction.shards, cores, workers_per_shard);
    const double pipeline_bound = prediction.shards * seated_capacity;
    prediction.items_per_sec = std::min(cpu_bound, pipeline_bound);
    if (!prediction.oversubscribed) {
      for (const double utilization : {0.5, 0.7, 0.9}) {
        prediction.tail.push_back(
            PredictShardTail(costs, workers_per_shard, seated_capacity, utilization));
      }
    }
    predictions.push_back(std::move(prediction));
  }

  {
    TablePrinter table({"cores", "shards", "regime", "pred items/s", "p99 slowdown @50/70/90%"});
    for (const CorePrediction& prediction : predictions) {
      std::ostringstream tail;
      if (prediction.tail.empty()) {
        tail << "(oversubscribed: tail dominated by host scheduling)";
      } else {
        for (std::size_t i = 0; i < prediction.tail.size(); ++i) {
          tail << (i == 0 ? "" : " / ") << TablePrinter::Fixed(prediction.tail[i].p99_slowdown, 1);
        }
      }
      table.AddRow({std::to_string(prediction.cores), std::to_string(prediction.shards),
                    prediction.oversubscribed ? "cpu-bound" : "pipeline-bound",
                    TablePrinter::Fixed(prediction.items_per_sec, 0), tail.str()});
    }
    table.Print(std::cout);
  }

  if (!json_out.empty()) {
    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n  \"tool\": \"scaling_model\",\n";
    json << "  \"calibration\": {\n";
    json << "    \"work_ns\": " << oversub.work_ns << ",\n";
    json << "    \"beta\": " << oversub.beta << ",\n";
    json << "    \"host_cpus\": " << artifact.host_cpus << ",\n";
    json << "    \"from_two_points\": " << (oversub.from_two_points ? "true" : "false") << "\n";
    json << "  },\n  \"seated_shard_capacity_per_sec\": " << seated_capacity << ",\n";
    json << "  \"predictions\": [\n";
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      const CorePrediction& prediction = predictions[i];
      json << "    {\"cores\": " << prediction.cores << ", \"shards\": " << prediction.shards
           << ", \"oversubscribed\": " << (prediction.oversubscribed ? "true" : "false")
           << ", \"items_per_sec\": " << prediction.items_per_sec << ", \"p99_slowdown\": [";
      for (std::size_t t = 0; t < prediction.tail.size(); ++t) {
        json << (t == 0 ? "" : ", ") << "{\"utilization\": " << prediction.tail[t].utilization
             << ", \"offered_krps\": " << prediction.tail[t].offered_krps
             << ", \"p99\": " << prediction.tail[t].p99_slowdown << "}";
      }
      json << "]}" << (i + 1 < predictions.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(json_out, std::ios::binary);
    out << json.str();
    if (!out) {
      std::cerr << "scaling_model: cannot write " << json_out << "\n";
      return 2;
    }
  }

  if (check && !within_tolerance) {
    std::cerr << "scaling_model: calibrated model misses the live numbers by more than "
              << kTolerance * 100 << "%\n";
    return 1;
  }
  std::cout << "scaling_model: live 1-/2-shard points reproduced within " << kTolerance * 100
            << "%\n";
  return 0;
}
