// net_loadgen: open-loop RPC load generator for the Concord network
// front-end (docs/networking.md).
//
// Plays the paper's client machine against a server started with
// kvstore_server --listen= (or any RpcServer embedder): opens N loopback
// connections, issues length-prefixed request frames on a configurable
// arrival process (Poisson by default, §5.1), round-robins them across
// connections, and accounts for every request it sent — each one ends as a
// response, a wire reject, or (under --churn-every=) a loss on a connection
// the client deliberately closed with requests in flight. Slowdown is
// computed from the server-measured latency echoed in each response frame
// (the paper's metric measures time at the server; client-side RTT is
// intentionally excluded).
//
// Flags (shared --flag= / CONCORD_* env helpers, unknown tokens die with the
// valid list):
//   --port=P            server port (required; CONCORD_NET_PORT)
//   --connections=N     concurrent connections (default 4)
//   --arrival=KIND      poisson | uniform | bursty (default poisson)
//   --offered-krps=R    offered load in krps (default 25)
//   --requests=N        count-bounded run (default 20000)
//   --duration-s=S      time-bounded run; overrides --requests= when > 0
//   --deadline-us=A,B   per-class relative deadlines carried in the frame
//   --service-us=A,B    per-class clean service times for slowdown (5,100)
//   --payload-bytes=N   request payload size (default 16)
//   --churn-every=N     close + reopen a connection every N sends (0 = off)
//   --seed=N            RNG seed (default 42)
//   --json-out=PATH     bench_compare-compatible JSON report

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/net/frame.h"
#include "src/stats/slowdown.h"
#include "src/telemetry/export.h"
#include "src/workload/arrival.h"

namespace concord {
namespace {

constexpr std::size_t kReadScratchBytes = 64 * 1024;
constexpr double kNsPerSec = 1.0e9;
constexpr double kDrainTimeoutS = 10.0;

// One client connection: outgoing byte backlog plus an incremental parser
// for the response stream. in_flight counts requests sent but not yet
// answered; abrupt churn forfeits them (the server's generation check drops
// the completions as responses_dropped).
struct ClientConn {
  int fd = -1;
  net::FrameParser parser;
  std::vector<unsigned char> out;
  std::size_t out_head = 0;
  std::uint64_t in_flight = 0;
  bool want_write = false;
};

std::vector<double> ParseCommaList(const std::string& spec) {
  std::vector<double> values;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    values.push_back(std::atof(item.c_str()));
  }
  return values;
}

int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  CONCORD_CHECK(fd >= 0) << "socket: " << std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CONCORD_CHECK(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "connect to 127.0.0.1:" << port << ": " << std::strerror(errno);
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = fcntl(fd, F_GETFL, 0);
  CONCORD_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "O_NONBLOCK: " << std::strerror(errno);
  return fd;
}

class NetLoadgen {
 public:
  struct Options {
    int port = 0;
    int connections = 4;
    ArrivalKind arrival = ArrivalKind::kPoisson;
    double offered_krps = 25.0;
    std::uint64_t requests = 20000;
    double duration_s = 0.0;  // > 0: time-bounded, overrides requests
    std::vector<double> deadline_us;
    std::vector<double> service_us = {5.0, 100.0};
    std::size_t payload_bytes = 16;
    std::uint64_t churn_every = 0;
    std::uint64_t seed = 42;
  };

  struct Report {
    std::uint64_t issued = 0;
    std::uint64_t responses = 0;
    std::uint64_t rejects = 0;
    std::uint64_t rejects_backpressure = 0;
    std::uint64_t rejects_busy = 0;
    std::uint64_t lost_to_churn = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t unaccounted = 0;  // nonzero: drain timed out
    double elapsed_s = 0.0;
    double achieved_krps = 0.0;
    double p50_slowdown = 0.0;
    double p99_slowdown = 0.0;
    double p999_slowdown = 0.0;
    std::uint64_t samples = 0;
  };

  explicit NetLoadgen(const Options& options) : options_(options), rng_(options.seed) {}

  // concord-lint: allow-no-probe (client tool; paces and drains on the main thread)
  Report Run() {
    CONCORD_CHECK(options_.port > 0) << "net_loadgen needs --port=";
    CONCORD_CHECK(options_.connections > 0) << "need at least one connection";
    CONCORD_CHECK(options_.offered_krps > 0.0) << "load must be positive";
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    CONCORD_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
    conns_.resize(static_cast<std::size_t>(options_.connections));
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      OpenConn(i);
    }
    scratch_.resize(kReadScratchBytes);

    const double mean_gap_ns = 1.0e6 / options_.offered_krps;
    const std::unique_ptr<ArrivalProcess> arrival =
        MakeArrivalProcess(options_.arrival, mean_gap_ns);
    const bool time_bounded = options_.duration_s > 0.0;
    const double duration_ns = options_.duration_s * kNsPerSec;
    const double expected_count =
        time_bounded ? duration_ns / mean_gap_ns : static_cast<double>(options_.requests);
    warmup_ids_ = static_cast<std::uint64_t>(0.1 * expected_count);

    std::vector<unsigned char> payload(options_.payload_bytes, 0xAB);
    const auto start = std::chrono::steady_clock::now();
    double next_arrival_ns = arrival->NextGapNs(rng_);
    std::uint64_t id = 0;
    // Send phase: open loop — the schedule advances regardless of responses.
    // concord-lint: allow-no-probe (open-loop pacing on the main thread)
    while (time_bounded || id < options_.requests) {
      const double elapsed_ns = ElapsedNs(start);
      if (time_bounded && next_arrival_ns >= duration_ns) {
        break;  // the schedule ran past the run window
      }
      if (elapsed_ns < next_arrival_ns) {
        PollOnce(0);  // drain responses while waiting for the next arrival
        if (next_arrival_ns - elapsed_ns > 50000.0) {
          std::this_thread::yield();
        }
        continue;
      }
      SendRequest(id, payload);
      ++id;
      next_arrival_ns += arrival->NextGapNs(rng_);
      if (options_.churn_every > 0 && id % options_.churn_every == 0) {
        ChurnConn(static_cast<std::size_t>(id / options_.churn_every) % conns_.size());
      }
    }

    // Drain phase: every sent request must come back as a response, a
    // reject, or have been forfeited to churn.
    const auto drain_start = std::chrono::steady_clock::now();
    // concord-lint: allow-no-probe (bounded drain loop on the main thread)
    while (report_.responses + report_.rejects + report_.lost_to_churn < report_.issued) {
      if (ElapsedNs(drain_start) > kDrainTimeoutS * kNsPerSec) {
        break;
      }
      PollOnce(10);
    }
    report_.unaccounted =
        report_.issued - report_.responses - report_.rejects - report_.lost_to_churn;
    report_.elapsed_s = ElapsedNs(start) / kNsPerSec;
    report_.achieved_krps = report_.elapsed_s > 0.0
                                ? static_cast<double>(report_.responses) /
                                      report_.elapsed_s / 1000.0
                                : 0.0;
    report_.p50_slowdown = tracker_.QuantileSlowdown(0.50);
    report_.p99_slowdown = tracker_.QuantileSlowdown(0.99);
    report_.p999_slowdown = tracker_.P999Slowdown();

    for (std::size_t i = 0; i < conns_.size(); ++i) {
      CloseConn(i);
    }
    close(epoll_fd_);
    return report_;
  }

 private:
  static double ElapsedNs(std::chrono::steady_clock::time_point since) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - since)
        .count();
  }

  void OpenConn(std::size_t index) {
    ClientConn& conn = conns_[index];
    conn.fd = ConnectLoopback(options_.port);
    conn.parser = net::FrameParser(net::kMaxFramePayloadBytes);
    conn.out.clear();
    conn.out_head = 0;
    conn.in_flight = 0;
    conn.want_write = false;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = index;
    CONCORD_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &event) == 0)
        << "epoll_ctl ADD: " << std::strerror(errno);
  }

  void CloseConn(std::size_t index) {
    ClientConn& conn = conns_[index];
    if (conn.fd < 0) {
      return;
    }
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    close(conn.fd);
    conn.fd = -1;
  }

  // Abrupt churn: close with requests in flight (forfeiting them — the
  // server's generation counter turns their completions into
  // responses_dropped) and reconnect in place.
  void ChurnConn(std::size_t index) {
    report_.lost_to_churn += conns_[index].in_flight;
    CloseConn(index);
    OpenConn(index);
    ++report_.reconnects;
  }

  void SendRequest(std::uint64_t id, const std::vector<unsigned char>& payload) {
    const int request_class = id % 10 == 9 ? 1 : 0;
    const auto cls = static_cast<std::size_t>(request_class);
    const double deadline_us =
        cls < options_.deadline_us.size() ? options_.deadline_us[cls] : 0.0;
    net::FrameHeader header;
    header.type = net::FrameType::kRequest;
    header.request_class = static_cast<std::uint8_t>(request_class);
    header.payload_len = static_cast<std::uint32_t>(payload.size());
    header.id = id;
    header.param = deadline_us > 0.0 ? static_cast<std::uint64_t>(deadline_us) : 0;
    ClientConn& conn = conns_[id % conns_.size()];
    net::AppendFrame(&conn.out, header, payload.empty() ? nullptr : payload.data());
    ++conn.in_flight;
    ++report_.issued;
    FlushWrites(id % conns_.size());
  }

  void FlushWrites(std::size_t index) {
    ClientConn& conn = conns_[index];
    // concord-lint: allow-no-probe (bounded by the connection's backlog)
    while (conn.out_head < conn.out.size()) {
      const ssize_t sent = send(conn.fd, conn.out.data() + conn.out_head,
                                conn.out.size() - conn.out_head, MSG_NOSIGNAL);
      if (sent > 0) {
        conn.out_head += static_cast<std::size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (sent < 0 && errno == EINTR) {
        continue;
      }
      CONCORD_CHECK(false) << "send: " << std::strerror(errno);
    }
    if (conn.out_head == conn.out.size()) {
      conn.out.clear();
      conn.out_head = 0;
    }
    const bool want_write = !conn.out.empty();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      epoll_event event{};
      event.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      event.data.u64 = index;
      CONCORD_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event) == 0)
          << "epoll_ctl MOD: " << std::strerror(errno);
    }
  }

  void PollOnce(int timeout_ms) {
    epoll_event events[16];
    const int n = epoll_wait(epoll_fd_, events, 16, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const auto index = static_cast<std::size_t>(events[i].data.u64);
      if (conns_[index].fd < 0) {
        continue;  // stale event for a churned connection
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        FlushWrites(index);
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        HandleReadable(index);
      }
    }
  }

  void HandleReadable(std::size_t index) {
    ClientConn& conn = conns_[index];
    // concord-lint: allow-no-probe (recv loop, bounded by the socket buffer)
    for (;;) {
      const ssize_t got = recv(conn.fd, scratch_.data(), scratch_.size(), 0);
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      if (got < 0 && errno == EINTR) {
        continue;
      }
      CONCORD_CHECK(got >= 0) << "recv: " << std::strerror(errno);
      if (got == 0) {
        // Server closed (drain deadline / slow-client eviction). Whatever is
        // still in flight on this connection will never be answered.
        report_.lost_to_churn += conn.in_flight;
        conn.in_flight = 0;
        CloseConn(index);
        return;
      }
      const bool ok = conn.parser.Feed(
          scratch_.data(), static_cast<std::size_t>(got),
          [this, &conn](const net::DecodedFrame& frame) { OnFrame(conn, frame); });
      CONCORD_CHECK(ok) << "response stream poisoned: "
                        << net::FrameErrorName(conn.parser.error());
      if (static_cast<std::size_t>(got) < scratch_.size()) {
        return;
      }
    }
  }

  void OnFrame(ClientConn& conn, const net::DecodedFrame& frame) {
    if (conn.in_flight > 0) {
      --conn.in_flight;
    }
    if (frame.header.type == net::FrameType::kReject) {
      ++report_.rejects;
      if (frame.header.param == net::kRejectBackpressure) {
        ++report_.rejects_backpressure;
      } else if (frame.header.param == net::kRejectServerBusy) {
        ++report_.rejects_busy;
      }
      return;
    }
    CONCORD_CHECK(frame.header.type == net::FrameType::kResponse)
        << "unexpected frame type from server";
    ++report_.responses;
    if (frame.header.id < warmup_ids_) {
      return;  // §5.1: discard warmup samples
    }
    const auto cls = static_cast<std::size_t>(frame.header.request_class);
    const double service_ns =
        (cls < options_.service_us.size() ? options_.service_us[cls] : 1.0) * 1000.0;
    // param carries the server-measured latency in nanoseconds.
    tracker_.Record(static_cast<double>(frame.header.param), service_ns,
                    static_cast<int>(cls));
    ++report_.samples;
  }

  Options options_;
  Rng rng_;
  std::vector<ClientConn> conns_;
  std::vector<unsigned char> scratch_;
  int epoll_fd_ = -1;
  std::uint64_t warmup_ids_ = 0;
  SlowdownTracker tracker_;
  Report report_;
};

int WriteJsonReport(const std::string& path, const NetLoadgen::Options& options,
                    const NetLoadgen::Report& report) {
  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n";
  json << "  \"benchmark\": \"net_loadgen\",\n";
  json << "  \"connections\": " << options.connections << ",\n";
  json << "  \"arrival\": \"" << ArrivalKindName(options.arrival) << "\",\n";
  json << "  \"payload_bytes\": " << options.payload_bytes << ",\n";
  // bench_compare reads pipelined_throughput.median_items_per_sec and
  // slowdown.p99, so a net_loadgen run can be compared like any bench run.
  json << "  \"pipelined_throughput\": {\n";
  json << "    \"median_items_per_sec\": " << report.achieved_krps * 1000.0 << "\n";
  json << "  },\n";
  json << "  \"slowdown\": {\n";
  json << "    \"completed\": " << report.samples << ",\n";
  json << "    \"p50\": " << report.p50_slowdown << ",\n";
  json << "    \"p99\": " << report.p99_slowdown << ",\n";
  json << "    \"p999\": " << report.p999_slowdown << "\n";
  json << "  },\n";
  json << "  \"open_loop\": {\n";
  json << "    \"offered_krps\": " << options.offered_krps << ",\n";
  json << "    \"achieved_krps\": " << report.achieved_krps << ",\n";
  json << "    \"achieved_vs_offered\": "
       << (options.offered_krps > 0.0 ? report.achieved_krps / options.offered_krps : 0.0)
       << ",\n";
  json << "    \"elapsed_s\": " << report.elapsed_s << "\n";
  json << "  },\n";
  json << "  \"net\": {\n";
  json << "    \"issued\": " << report.issued << ",\n";
  json << "    \"responses\": " << report.responses << ",\n";
  json << "    \"rejects\": " << report.rejects << ",\n";
  json << "    \"rejects_backpressure\": " << report.rejects_backpressure << ",\n";
  json << "    \"rejects_busy\": " << report.rejects_busy << ",\n";
  json << "    \"lost_to_churn\": " << report.lost_to_churn << ",\n";
  json << "    \"reconnects\": " << report.reconnects << ",\n";
  json << "    \"unaccounted\": " << report.unaccounted << "\n";
  json << "  }\n";
  json << "}\n";
  return telemetry::WriteTextFile(json.str(), path, "net_loadgen json") ? 0 : 1;
}

int Main(int argc, char** argv) {
  NetLoadgen::Options options;
  options.port = static_cast<int>(
      telemetry::IntFromFlagOrEnv(argc, argv, "--port=", "CONCORD_NET_PORT", 0));
  options.connections = static_cast<int>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--connections=", "CONCORD_NET_CONNECTIONS",
                                     4)));
  options.arrival = ArrivalKindFromArgsOrEnv(argc, argv);
  options.offered_krps = static_cast<double>(std::max<long long>(
      1,
      telemetry::IntFromFlagOrEnv(argc, argv, "--offered-krps=", "CONCORD_OFFERED_KRPS", 25)));
  options.requests = static_cast<std::uint64_t>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--requests=", "CONCORD_NET_REQUESTS", 20000)));
  options.duration_s = static_cast<double>(std::max<long long>(
      0, telemetry::IntFromFlagOrEnv(argc, argv, "--duration-s=", "CONCORD_NET_DURATION_S", 0)));
  options.payload_bytes = static_cast<std::size_t>(std::max<long long>(
      0, telemetry::IntFromFlagOrEnv(argc, argv, "--payload-bytes=", "CONCORD_NET_PAYLOAD_BYTES",
                                     16)));
  options.churn_every = static_cast<std::uint64_t>(std::max<long long>(
      0, telemetry::IntFromFlagOrEnv(argc, argv, "--churn-every=", "CONCORD_NET_CHURN_EVERY",
                                     0)));
  options.seed = static_cast<std::uint64_t>(std::max<long long>(
      1, telemetry::IntFromFlagOrEnv(argc, argv, "--seed=", "CONCORD_NET_SEED", 42)));
  const std::string deadline_spec =
      telemetry::OutPathFromFlagOrEnv(argc, argv, "--deadline-us=", "CONCORD_DEADLINE_US");
  if (!deadline_spec.empty()) {
    options.deadline_us = ParseCommaList(deadline_spec);
  }
  const std::string service_spec =
      telemetry::OutPathFromFlagOrEnv(argc, argv, "--service-us=", "CONCORD_NET_SERVICE_US");
  if (!service_spec.empty()) {
    options.service_us = ParseCommaList(service_spec);
  }
  const std::string json_out =
      telemetry::OutPathFromFlagOrEnv(argc, argv, "--json-out=", "CONCORD_NET_JSON_OUT");

  NetLoadgen loadgen(options);
  const NetLoadgen::Report report = loadgen.Run();

  std::cout << "net_loadgen: issued " << report.issued << " responses " << report.responses
            << " rejects " << report.rejects << " lost_to_churn " << report.lost_to_churn
            << " unaccounted " << report.unaccounted << "\n";
  std::cout << "net_loadgen: offered " << options.offered_krps << " krps achieved "
            << report.achieved_krps << " krps (" << report.elapsed_s << " s)\n";
  std::cout << "net_loadgen: slowdown p50 " << report.p50_slowdown << " p99 "
            << report.p99_slowdown << " p999 " << report.p999_slowdown << " over "
            << report.samples << " samples\n";
  int status = report.unaccounted == 0 ? 0 : 1;
  if (!json_out.empty()) {
    const int json_status = WriteJsonReport(json_out, options, report);
    status = status != 0 ? status : json_status;
  }
  return status;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) { return concord::Main(argc, argv); }
